"""Durable, filesystem-backed work queue for sharded sweeps.

A :class:`SweepQueue` turns one sweep into a directory that any number
of workers — processes today, hosts on a shared filesystem tomorrow —
can cooperatively drain:

* **submit** expands the :class:`~repro.runtime.config.SweepSpec` (or an
  explicit scenario list) into *circuit-grouped shards*: scenarios
  sharing a :class:`~repro.runtime.config.CircuitRef` land in the same
  shard (optionally chunked by ``shard_size``), so a worker claiming a
  shard runs it through one compile-once
  :class:`~repro.core.session.SolverSession`
  (:func:`~repro.runtime.runner.run_scenario_group`).
* **claim** is one atomic ``os.rename`` of the shard ticket from
  ``pending/`` to ``claimed/`` — exactly one contender wins, the losers
  see the source file gone and move on.  No locks, no daemon.
* **leases** make claims revocable: the claimant writes a heartbeat
  sidecar next to its claimed ticket and refreshes it while solving.
  :meth:`reclaim_expired` renames any claimed ticket whose lease went
  stale back to ``pending/`` — so a shard abandoned by a killed worker
  is re-run by a survivor, which is work stealing for free.  Because
  records are deterministic and content-addressed, the pathological
  race (a worker presumed dead that was merely slow) is harmless: both
  executions write byte-identical records, and the slow worker's final
  ticket rename simply fails (``lease_lost``).
* **results** land in a shared :class:`~repro.runtime.cache.ResultCache`
  under ``results/``, keyed by scenario content hash — the same keys a
  serial sweep uses, so caches merge across queues and hosts
  (:meth:`ResultCache.merge`).
* **gather** reassembles the records in scenario order straight from
  the results store.  Completion is *record-presence-based*, not
  shard-state-based: a queue whose results were merged in from another
  host gathers successfully without any local worker having run.  The
  gathered stream is byte-identical (canonical JSON) to a serial
  :class:`~repro.runtime.runner.BatchRunner` run of the same spec —
  pinned by test.

Directory layout::

    <root>/
      sweep.json     submission manifest: scenarios (canonical), shard ids
      pending/       unclaimed shard tickets  <shard>.json
      claimed/       claimed tickets + <shard>.lease heartbeat sidecars
      done/          completed tickets (terminal)
      results/       shared ResultCache (scenario-hash keyed)
      events.jsonl   append-only event stream (see runtime.events)

Every state transition is a rename of one ticket file, so a queue is
never torn: crash at any point leaves each shard in exactly one of
``pending``/``claimed``/``done``.
"""

import dataclasses
import json
import os
import pathlib
import re
import time

from repro.runtime.cache import ResultCache
from repro.runtime.config import Scenario, SweepSpec
from repro.runtime.events import EventLog, read_events
from repro.utils.errors import ReproError, ValidationError

#: Version of the on-disk manifest / ticket envelope.
QUEUE_SCHEMA_VERSION = 1

_LABEL_RE = re.compile(r"[^A-Za-z0-9_.-]+")


def _utcnow():
    return time.time()


@dataclasses.dataclass(frozen=True)
class Shard:
    """One claimable unit of work: scenarios sharing a circuit.

    ``indexes`` are positions into the sweep's scenario expansion order
    (the manifest's ``scenarios`` list), which is how ``gather`` and the
    event stream tie shard-local results back to the global sweep.
    """

    shard_id: str
    indexes: tuple
    scenarios: tuple

    def __len__(self):
        return len(self.scenarios)

    def to_dict(self):
        return {
            "kind": "shard",
            "schema": QUEUE_SCHEMA_VERSION,
            "shard": self.shard_id,
            "indexes": [int(i) for i in self.indexes],
            "scenarios": [s.canonical_dict() for s in self.scenarios],
        }

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict) or data.get("kind") != "shard":
            raise ReproError("not a shard ticket")
        if data.get("schema") != QUEUE_SCHEMA_VERSION:
            raise ReproError(
                f"unsupported shard schema {data.get('schema')!r}")
        return cls(
            shard_id=str(data["shard"]),
            indexes=tuple(int(i) for i in data["indexes"]),
            scenarios=tuple(Scenario.from_dict(d) for d in data["scenarios"]),
        )


@dataclasses.dataclass(frozen=True)
class QueueStatus:
    """Point-in-time view of a queue's drain progress."""

    total_shards: int
    pending: int
    claimed: int
    done: int
    total_scenarios: int
    records_present: int

    @property
    def drained(self):
        """Every shard reached ``done/``."""
        return self.done == self.total_shards

    @property
    def complete(self):
        """Every scenario has a record in the results store.

        The ``gather`` criterion — satisfiable without local workers
        when results were merged in from elsewhere.
        """
        return self.records_present == self.total_scenarios

    def summary(self):
        return (f"{self.total_shards} shards: {self.pending} pending, "
                f"{self.claimed} claimed, {self.done} done; "
                f"records {self.records_present}/{self.total_scenarios}")


def _group_scenarios(scenarios):
    """Partition ``enumerate(scenarios)`` by CircuitRef, first-appearance order."""
    groups = []
    by_ref = {}
    for index, scenario in enumerate(scenarios):
        members = by_ref.get(scenario.circuit)
        if members is None:
            members = by_ref[scenario.circuit] = []
            groups.append(members)
        members.append((index, scenario))
    return groups


def make_shards(scenarios, shard_size=None):
    """Circuit-grouped shards over ``scenarios`` (optionally chunked).

    One shard per :class:`CircuitRef` group by default;  ``shard_size``
    caps scenarios per shard, splitting large groups into consecutive
    chunks so single-circuit sweeps still parallelize across workers.
    Shard ids are ``<seq>-<circuit label>`` with the sequence number
    zero-padded, so lexicographic claim order follows submission order.
    """
    if shard_size is not None and int(shard_size) < 1:
        raise ValidationError("shard_size must be >= 1")
    chunks = []
    for members in _group_scenarios(scenarios):
        if shard_size is None:
            chunks.append(members)
        else:
            size = int(shard_size)
            chunks.extend(members[i:i + size]
                          for i in range(0, len(members), size))
    shards = []
    for seq, members in enumerate(chunks):
        label = _LABEL_RE.sub("-", members[0][1].circuit.label) or "circuit"
        shards.append(Shard(
            shard_id=f"{seq:04d}-{label}",
            indexes=tuple(index for index, _ in members),
            scenarios=tuple(scenario for _, scenario in members),
        ))
    return shards


class SweepQueue:
    """Handle on one queue directory (existing or about to be created).

    Construction is cheap and side-effect free; :meth:`submit` creates
    the layout, every other method expects a submitted queue.  Multiple
    handles — across processes and hosts sharing the filesystem — may
    operate on one directory concurrently; all mutation goes through
    atomic renames and atomic appends.
    """

    def __init__(self, root):
        self.root = pathlib.Path(root)
        self.pending_dir = self.root / "pending"
        self.claimed_dir = self.root / "claimed"
        self.done_dir = self.root / "done"
        self.results_dir = self.root / "results"
        self.manifest_path = self.root / "sweep.json"
        self.events_path = self.root / "events.jsonl"
        self._manifest = None

    # -- submission -------------------------------------------------------------

    def exists(self):
        """True when this directory holds a submitted sweep."""
        return self.manifest_path.exists()

    def submit(self, spec_or_scenarios, shard_size=None, label=""):
        """Expand, shard, and persist one sweep; returns the shard list.

        A queue holds exactly one sweep for its lifetime (re-submission
        raises) — the manifest *is* the gather contract, so it must
        never change under a draining worker.
        """
        if self.exists():
            raise ReproError(
                f"queue {self.root} already holds a submitted sweep")
        if isinstance(spec_or_scenarios, SweepSpec):
            scenarios = spec_or_scenarios.scenarios()
        else:
            scenarios = list(spec_or_scenarios)
        if not scenarios:
            raise ValidationError("cannot submit an empty sweep")
        shards = make_shards(scenarios, shard_size)
        return self._persist(scenarios, shards, label)

    def submit_shards(self, groups, label=""):
        """Submit with an explicit shard per scenario group.

        The :class:`~repro.runtime.worker.QueueExecutor` path: the
        caller (the batch runner's grouping planner) already partitioned
        the work, and result streaming needs exactly one shard per work
        item.  Scenario order is the concatenation of the groups.
        """
        if self.exists():
            raise ReproError(
                f"queue {self.root} already holds a submitted sweep")
        groups = [list(group) for group in groups]
        if not groups or not all(groups):
            raise ValidationError("submit_shards needs non-empty groups")
        scenarios = [s for group in groups for s in group]
        shards = []
        offset = 0
        for seq, group in enumerate(groups):
            name = _LABEL_RE.sub("-", group[0].circuit.label) or "circuit"
            shards.append(Shard(
                shard_id=f"{seq:04d}-{name}",
                indexes=tuple(range(offset, offset + len(group))),
                scenarios=tuple(group),
            ))
            offset += len(group)
        return self._persist(scenarios, shards, label)

    def _persist(self, scenarios, shards, label):
        for directory in (self.pending_dir, self.claimed_dir, self.done_dir,
                          self.results_dir):
            directory.mkdir(parents=True, exist_ok=True)
        for shard in shards:
            self._write_atomic(self.pending_dir / f"{shard.shard_id}.json",
                               json.dumps(shard.to_dict(), indent=1))
        manifest = {
            "kind": "sweep_queue",
            "schema": QUEUE_SCHEMA_VERSION,
            "label": str(label),
            "scenarios": [s.canonical_dict() for s in scenarios],
            "shards": [shard.shard_id for shard in shards],
        }
        self._write_atomic(self.manifest_path, json.dumps(manifest, indent=1))
        self._manifest = manifest
        self.log().append("sweep_submitted", label=str(label),
                          shards=len(shards), scenarios=len(scenarios))
        return shards

    @staticmethod
    def _write_atomic(path, payload):
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_text(payload)
        os.replace(tmp, path)

    # -- shared views -----------------------------------------------------------

    def manifest(self):
        if self._manifest is None:
            try:
                data = json.loads(self.manifest_path.read_text())
            except (OSError, ValueError) as error:
                raise ReproError(
                    f"no submitted sweep at {self.root}: {error}") from None
            if not isinstance(data, dict) or data.get("kind") != "sweep_queue":
                raise ReproError(f"{self.manifest_path} is not a sweep queue")
            if data.get("schema") != QUEUE_SCHEMA_VERSION:
                raise ReproError(
                    f"unsupported queue schema {data.get('schema')!r}")
            self._manifest = data
        return self._manifest

    def scenarios(self):
        """The sweep's scenarios in expansion (gather) order."""
        return [Scenario.from_dict(d) for d in self.manifest()["scenarios"]]

    def shard_ids(self):
        return list(self.manifest()["shards"])

    def cache(self):
        """A :class:`ResultCache` handle on this queue's results store."""
        return ResultCache(self.results_dir)

    def log(self, worker=""):
        """An :class:`EventLog` writer bound to this queue's stream."""
        return EventLog(self.events_path, worker=worker)

    def events(self):
        """Every event currently on disk (see :func:`read_events`)."""
        return read_events(self.events_path)

    def _ids_in(self, directory):
        return sorted(p.stem for p in directory.glob("*.json"))

    # -- claim / lease protocol -------------------------------------------------

    def _lease_path(self, shard_id):
        return self.claimed_dir / f"{shard_id}.lease"

    def _write_lease(self, shard_id, worker_id):
        self._write_atomic(self._lease_path(shard_id),
                           json.dumps({"worker": str(worker_id),
                                       "ts": _utcnow()}))

    def claim(self, worker_id):
        """Atomically claim the first pending shard; ``None`` when empty.

        The rename from ``pending/`` to ``claimed/`` is the entire
        mutual-exclusion protocol: concurrent claimants racing for one
        ticket see exactly one ``rename`` succeed, and every loser gets
        ``FileNotFoundError`` and tries the next ticket.
        """
        self.manifest()
        for shard_id in self._ids_in(self.pending_dir):
            source = self.pending_dir / f"{shard_id}.json"
            target = self.claimed_dir / f"{shard_id}.json"
            try:
                os.rename(source, target)
            except OSError:
                continue       # lost the race; next ticket
            try:
                # rename preserves mtime, so without this a reclaimer's
                # mtime fallback (lease_age) would see the *submit* time
                # and steal a just-claimed shard whose lease sidecar has
                # not landed yet.
                os.utime(target)
            except OSError:
                pass
            self._write_lease(shard_id, worker_id)
            try:
                shard = Shard.from_dict(json.loads(target.read_text()))
            except (OSError, ValueError, ReproError):
                # The ticket vanished (stolen by an overeager reclaimer)
                # or is unreadable: surrender this claim, try the next.
                self.log(worker_id).append("lease_lost", shard=shard_id)
                continue
            self.log(worker_id).append("shard_claimed", shard=shard_id,
                                       scenarios=len(shard))
            return shard
        return None

    def heartbeat(self, shard_id, worker_id, event=True):
        """Refresh the claimant's lease (and optionally log liveness)."""
        self._write_lease(shard_id, worker_id)
        if event:
            self.log(worker_id).append("heartbeat", shard=shard_id)

    def lease_age(self, shard_id):
        """Seconds since the shard's lease was last refreshed.

        Falls back to the claimed ticket's mtime when the sidecar is
        missing (a claimant that died between rename and lease write).
        """
        try:
            data = json.loads(self._lease_path(shard_id).read_text())
            return max(0.0, _utcnow() - float(data["ts"]))
        except (OSError, TypeError, ValueError, KeyError):
            pass
        try:
            stat = (self.claimed_dir / f"{shard_id}.json").stat()
            return max(0.0, _utcnow() - stat.st_mtime)
        except OSError:
            return 0.0

    def reclaim_expired(self, lease_s, worker_id=""):
        """Steal claimed shards whose lease went stale; returns shard ids.

        Each reclaim is a rename back to ``pending/`` — atomic, so two
        survivors policing the same corpse reclaim it exactly once.
        """
        if lease_s < 0:
            raise ValidationError("lease_s must be non-negative")
        reclaimed = []
        for shard_id in self._ids_in(self.claimed_dir):
            if self.lease_age(shard_id) <= lease_s:
                continue
            source = self.claimed_dir / f"{shard_id}.json"
            target = self.pending_dir / f"{shard_id}.json"
            try:
                os.rename(source, target)
            except OSError:
                continue       # completed or reclaimed by someone else
            try:
                self._lease_path(shard_id).unlink()
            except OSError:
                pass
            self.log(worker_id).append("lease_reclaimed", shard=shard_id)
            reclaimed.append(shard_id)
        return reclaimed

    def complete(self, shard, worker_id, computed=0, cached=0):
        """Move a claimed shard to ``done/``; False when the lease was lost.

        A ``False`` return means another worker reclaimed (and will
        re-run) the shard while this one was still solving.  That is not
        an error: the records this worker already persisted are
        byte-identical to what the re-run will produce, so the caller
        just moves on.
        """
        source = self.claimed_dir / f"{shard.shard_id}.json"
        target = self.done_dir / f"{shard.shard_id}.json"
        try:
            os.rename(source, target)
        except OSError:
            self.log(worker_id).append("lease_lost", shard=shard.shard_id)
            return False
        try:
            self._lease_path(shard.shard_id).unlink()
        except OSError:
            pass
        self.log(worker_id).append("shard_done", shard=shard.shard_id,
                                   computed=int(computed), cached=int(cached))
        return True

    # -- progress / assembly ----------------------------------------------------

    def status(self):
        """Current :class:`QueueStatus` (scans tickets and the results store)."""
        manifest = self.manifest()
        scenarios = self.scenarios()
        cache = self.cache()
        present = sum(1 for s in scenarios if s in cache)
        return QueueStatus(
            total_shards=len(manifest["shards"]),
            pending=len(self._ids_in(self.pending_dir)),
            claimed=len(self._ids_in(self.claimed_dir)),
            done=len(self._ids_in(self.done_dir)),
            total_scenarios=len(scenarios),
            records_present=present,
        )

    def gather(self, partial=False):
        """Records in scenario order, straight from the results store.

        Deterministic reassembly: the manifest fixes the scenario order,
        the store is content-addressed, and records are deterministic —
        so the result is byte-identical (canonical JSON) to a serial
        :class:`~repro.runtime.runner.BatchRunner` run of the same spec,
        no matter how many workers drained the queue, in what order, or
        on which hosts.  Raises unless every record is present
        (``partial=True`` returns what exists).
        """
        cache = self.cache()
        records = []
        missing = []
        for scenario in self.scenarios():
            record = cache.peek(scenario)
            if record is None:
                missing.append(scenario.label)
            else:
                records.append(record)
        if missing and not partial:
            raise ReproError(
                f"queue {self.root} is incomplete: {len(missing)} of "
                f"{len(records) + len(missing)} records missing "
                f"(first: {missing[0]})")
        return records
