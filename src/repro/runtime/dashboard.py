"""The HTML dashboard: every pixel rendered from the event stream.

:func:`render_dashboard` takes the per-sweep entries built by
:meth:`~repro.runtime.api.SweepService.dashboard_entries` — each one a
:class:`~repro.analysis.livetable.SweepEventState` folded from that
sweep's ``events.jsonl`` plus the reader's torn-line salvage count —
and renders a single self-refreshing HTML page: queue depth and
progress per sweep, per-shard estimated-vs-actual solve cost, worker
heartbeat ages, and the live Table-1 snapshot
(:meth:`~repro.analysis.livetable.SweepEventState.table`) in a
``<pre>`` block.

The hard rule, inherited from the watcher and enforced by the seam:
**this module never touches a queue directory**.  It sees only what
the event stream said.  That keeps a refreshing browser tab strictly
read-only with respect to a live drain, and means the same page can
render a finished sweep, a half-drained one, or a replayed historical
stream — identically.

Plain HTML with inline CSS and a ``<meta http-equiv="refresh">``: no
JavaScript, no assets, nothing for the stdlib-only contract to drag in.
Clients that want live push use the SSE endpoint instead.
"""

import html

__all__ = ["render_dashboard"]

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-bottom: .2rem; }
table { border-collapse: collapse; margin: .4rem 0 1rem; }
th, td { border: 1px solid #cdd3de; padding: .15rem .6rem;
         font-size: .85rem; text-align: left; }
th { background: #eef1f6; }
pre { background: #f6f7fa; border: 1px solid #cdd3de;
      padding: .6rem; font-size: .8rem; overflow-x: auto; }
.meta { color: #5a6172; font-size: .85rem; }
.done { color: #1d7a36; } .failed { color: #b3261e; }
.claimed { color: #8a5a00; } .pending { color: #5a6172; }
.active { color: #1d7a36; }
.warn { color: #b3261e; font-weight: 600; }
""".strip()


def _fmt(value, digits=2):
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _shard_table(state):
    rows = state.shard_rows()
    if not rows:
        return "<p class='meta'>no shard activity yet</p>"
    cells = []
    for row in rows:
        cells.append(
            "<tr><td>{shard}</td><td class='{state}'>{state}</td>"
            "<td>{circuit}</td><td>{est}</td><td>{actual}</td>"
            "<td>{attempts}</td></tr>".format(
                shard=html.escape(str(row["shard"])),
                state=html.escape(str(row["state"])),
                circuit=html.escape(str(row["circuit"])),
                est=_fmt(row["est_cost"]),
                actual=_fmt(row["actual_s"]),
                attempts=_fmt(row["attempts"], 0)))
    return ("<table><tr><th>shard</th><th>state</th><th>circuit</th>"
            "<th>est cost</th><th>actual s</th><th>attempts</th></tr>"
            + "".join(cells) + "</table>")


def _worker_table(state):
    rows = state.worker_rows()
    if not rows:
        return "<p class='meta'>no workers seen</p>"
    cells = []
    for row in rows:
        age = "-" if row["age_s"] is None else f"{row['age_s']:.1f}s ago"
        cells.append(
            "<tr><td>{worker}</td><td class='{state}'>{state}</td>"
            "<td>{age}</td></tr>".format(
                worker=html.escape(str(row["worker"])),
                state=html.escape(str(row["state"])),
                age=html.escape(age)))
    return ("<table><tr><th>worker</th><th>state</th><th>last heartbeat"
            "</th></tr>" + "".join(cells) + "</table>")


def _sweep_section(entry):
    state = entry["state"]
    progress = state.progress()
    total = ("?" if state.total_scenarios is None
             else state.total_scenarios)
    title = (f"{entry['tenant']} / {entry['label']}" if entry.get("label")
             else entry["tenant"])
    corrupt = ""
    if entry.get("corrupt_lines"):
        corrupt = (f" &middot; <span class='warn'>"
                   f"{entry['corrupt_lines']} corrupt event line(s) "
                   f"salvaged</span>")
    parts = [
        f"<h2>{html.escape(title)} "
        f"<span class='meta'>{html.escape(entry['sweep'][:12])}</span></h2>",
        f"<p class='meta'>priority {_fmt(entry.get('priority'))} &middot; "
        f"records {len(state.records)}/{total} &middot; "
        f"queue depth {_fmt(state.depth)} &middot; "
        f"{'complete' if progress['complete'] else 'running'}"
        f"{corrupt}</p>",
        _shard_table(state),
        _worker_table(state),
    ]
    if state.records:
        parts.append(f"<pre>{html.escape(state.table())}</pre>")
    return "\n".join(parts)


def render_dashboard(entries, refresh_s=2, title="repro sweep service"):
    """The full dashboard page for a list of sweep entries.

    Each entry is a dict with ``sweep``/``tenant``/``priority``/
    ``label``/``state`` (a folded
    :class:`~repro.analysis.livetable.SweepEventState`) and
    ``corrupt_lines`` — i.e. event-stream derivatives only.  Returns an
    HTML string.
    """
    depth_total = sum(e["state"].depth or 0 for e in entries)
    body = ("\n<hr>\n".join(_sweep_section(e) for e in entries)
            if entries else "<p class='meta'>no sweeps submitted yet — "
            "POST /v1/sweeps to get started</p>")
    return (
        "<!doctype html>\n<html><head>"
        f"<meta charset='utf-8'>"
        f"<meta http-equiv='refresh' content='{int(refresh_s)}'>"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_STYLE}</style></head>\n<body>"
        f"<h1>{html.escape(title)}</h1>"
        f"<p class='meta'>{len(entries)} sweep(s) &middot; "
        f"total queue depth {depth_total} &middot; rendered from the "
        f"event stream only</p>\n"
        f"{body}\n</body></html>\n"
    )
