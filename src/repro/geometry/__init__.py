"""Layout geometry substrate.

The paper abstracts layout to (a) an adjacency relation between wires
sharing a channel and (b) per-adjacent-pair geometry ``(l_ij, d_ij,
f̂_ij)`` feeding the coupling model of Eq. 2.  This package generates that
abstraction for arbitrary circuits:

* :func:`~repro.geometry.channels.wires_by_level` groups wires into
  routing channels (one per topological level — the standard-cell row
  model; see DESIGN.md §3),
* :class:`~repro.geometry.layout.ChannelLayout` holds the track order of
  every channel and extracts :class:`~repro.geometry.layout.CouplingPair`
  records for adjacent tracks.
"""

from repro.geometry.channels import Channel, wires_by_level
from repro.geometry.layout import ChannelLayout, CouplingPair

__all__ = ["Channel", "wires_by_level", "ChannelLayout", "CouplingPair"]
