"""Grouping wires into routing channels.

The paper orders "the wires" of a circuit on parallel tracks; for a
many-thousand-wire netlist the physically meaningful unit is a routing
channel.  We use the standard-cell row picture: all wires at the same
topological level run through the same channel, so they are candidates
for mutual adjacency (and therefore coupling).  Any other partition can
be supplied to :class:`~repro.geometry.layout.ChannelLayout` directly.
"""

import dataclasses

from repro.utils.errors import GeometryError


@dataclasses.dataclass(frozen=True)
class Channel:
    """A set of wires routed through the same region.

    ``wires`` is the tuple of wire node indices, in track order once an
    ordering stage has run (construction order before that).
    """

    label: str
    wires: tuple

    def __post_init__(self):
        if len(set(self.wires)) != len(self.wires):
            raise GeometryError(f"channel {self.label!r} lists a wire twice")

    def __len__(self):
        return len(self.wires)

    def reordered(self, order):
        """Return a copy with tracks permuted by ``order`` (a permutation
        of positions into ``wires``)."""
        if sorted(order) != list(range(len(self.wires))):
            raise GeometryError(f"invalid track permutation for channel {self.label!r}")
        return Channel(self.label, tuple(self.wires[k] for k in order))


def wires_by_level(circuit):
    """Partition all wires of ``circuit`` into per-level channels.

    Returns a list of :class:`Channel` (ascending level).  Levels with a
    single wire still form a channel (it simply has no neighbors).
    """
    compiled = circuit.compile()
    groups = {}
    for idx in compiled.wire_indices:
        groups.setdefault(int(compiled.level[idx]), []).append(int(idx))
    return [
        Channel(label=f"level{lvl}", wires=tuple(sorted(groups[lvl])))
        for lvl in sorted(groups)
    ]
