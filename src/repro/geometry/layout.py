"""Track assignment and coupling-pair extraction.

After the ordering stage decides which wires sit on adjacent tracks,
:class:`ChannelLayout` produces one :class:`CouplingPair` per adjacent
track pair, carrying the geometry of the paper's Eq. 2:

    c_ij = (f̂_ij · l_ij / d_ij) · 1 / (1 − (x_i + x_j) / (2·d_ij))

with ``l_ij`` the overlap length (the shorter of the two wire lengths in
this channel model), ``d_ij`` the middle-to-middle track distance, and
``f̂_ij`` the unit-length fringing capacitance between the wires.
"""

import dataclasses

import numpy as np

from repro.geometry.channels import Channel
from repro.utils.errors import GeometryError


@dataclasses.dataclass(frozen=True)
class CouplingPair:
    """Geometry of one adjacent wire pair (``i < j`` as node indices)."""

    i: int
    j: int
    overlap: float       # l_ij, µm
    distance: float      # d_ij, µm (middle-to-middle)
    unit_fringe: float   # f̂_ij, fF/µm

    def __post_init__(self):
        if self.i == self.j:
            raise GeometryError("a wire cannot couple to itself")
        if self.i > self.j:
            raise GeometryError("CouplingPair requires i < j (dominating-index order)")
        if self.overlap <= 0 or self.distance <= 0 or self.unit_fringe <= 0:
            raise GeometryError("overlap, distance, unit_fringe must be positive")

    @property
    def ctilde(self):
        """The constant ``~c_ij = f̂_ij · l_ij / d_ij`` (fF) of Eq. 3."""
        return self.unit_fringe * self.overlap / self.distance

    @property
    def chat(self):
        """The paper's ``ĉ_ij = ~c_ij / (2·d_ij)`` (fF/µm)."""
        return self.ctilde / (2.0 * self.distance)


class ChannelLayout:
    """Track order of every channel plus pair extraction.

    Parameters
    ----------
    circuit:
        The circuit the wires belong to (supplies lengths and the tech).
    channels:
        Iterable of :class:`Channel`; the tuple order of each channel's
        ``wires`` is the track order.
    pitch:
        Middle-to-middle distance of adjacent tracks (µm); defaults to
        ``tech.track_pitch``.
    """

    def __init__(self, circuit, channels, pitch=None):
        self.circuit = circuit
        self.channels = tuple(channels)
        self.pitch = circuit.tech.track_pitch if pitch is None else float(pitch)
        if self.pitch <= 0:
            raise GeometryError("track pitch must be positive")
        # Vectorized validation (layouts are rebuilt by apply_ordering on
        # the cold path); the Python loop only reruns on failure to name
        # the offending wire.
        members = np.fromiter(
            (idx for channel in self.channels for idx in channel.wires),
            dtype=np.int64)
        wire_mask = circuit.wire_mask()
        ok = (members.size == 0
              or (members.min() >= 0 and members.max() < wire_mask.size
                  and bool(wire_mask[members].all())
                  and np.unique(members).size == members.size))
        if not ok:
            seen = set()
            for channel in self.channels:
                for idx in channel.wires:
                    if idx in seen:
                        raise GeometryError(f"wire {idx} appears in two channels")
                    seen.add(idx)
                    if not (0 <= idx < wire_mask.size and wire_mask[idx]):
                        raise GeometryError(f"channel member {idx} is not a wire")

    @classmethod
    def from_levels(cls, circuit, pitch=None):
        """Layout with one channel per topological level (default model)."""
        from repro.geometry.channels import wires_by_level

        return cls(circuit, wires_by_level(circuit), pitch=pitch)

    def apply_ordering(self, orders):
        """Return a new layout with channels permuted by ``orders``.

        ``orders`` maps channel label → position permutation (as returned
        by the ordering algorithms in :mod:`repro.noise.ordering`).
        Channels not mentioned keep their current track order.
        """
        new_channels = []
        for channel in self.channels:
            order = orders.get(channel.label)
            new_channels.append(channel if order is None else channel.reordered(order))
        return ChannelLayout(self.circuit, new_channels, pitch=self.pitch)

    def coupling_pairs(self):
        """One :class:`CouplingPair` per adjacent track pair, all channels.

        Overlap length is the shorter wire's length (parallel-run model);
        the unit fringing capacitance comes from the technology.
        """
        tech = self.circuit.tech
        pairs = []
        for channel in self.channels:
            for a, b in zip(channel.wires, channel.wires[1:]):
                i, j = (a, b) if a < b else (b, a)
                overlap = min(self.circuit.node(i).length, self.circuit.node(j).length)
                pairs.append(CouplingPair(
                    i=i, j=j, overlap=overlap, distance=self.pitch,
                    unit_fringe=tech.coupling_unit_capacitance,
                ))
        return pairs

    def max_size_utilization(self, x):
        """Largest ``(x_i + x_j) / (2·d_ij)`` over all adjacent pairs.

        The Taylor form of Eq. 3 (and the exact hyperbolic form) require
        this ratio to stay below 1; values near 1 mean the two wires
        physically touch.  Callers use this to sanity-check bounds.
        """
        worst = 0.0
        for pair in self.coupling_pairs():
            worst = max(worst, (x[pair.i] + x[pair.j]) / (2.0 * pair.distance))
        return worst

    def __repr__(self):
        total = sum(len(c) for c in self.channels)
        return f"ChannelLayout(channels={len(self.channels)}, wires={total}, pitch={self.pitch})"
