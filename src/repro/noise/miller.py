"""Miller / anti-Miller switching weights (paper Sec. 1 and 3.2).

The paper's Eq. 1 multiplies coupling capacitance by a switching factor:
wires switching in *opposite* directions see the Miller effect (effective
coupling 2·C_c), wires switching *together* see the anti-Miller effect
(effective coupling 0).  With ``similarity ∈ [−1, 1]`` measured per pair,
the factor interpolating those endpoints is ``1 − similarity ∈ [0, 2]``:

* similarity = −1 (always opposite)  → weight 2  (Miller worst case)
* similarity = +1 (always together) → weight 0  (anti-Miller)

Eq. 1 as printed says "similarity × coupling", which would *reward*
dissimilar switching; the Miller discussion in the same section makes the
intent unambiguous, so :data:`MillerMode.SIMILARITY` uses ``1 − s``.  The
literal reading is available (clipped at 0) for comparison, along with
the conventional worst-case and physical-only modes.
"""

import enum

import numpy as np

from repro.utils.errors import GeometryError


class MillerMode(enum.Enum):
    """How switching behavior scales physical coupling capacitance."""

    #: The paper's model: weight ``1 − similarity(i,j)`` ∈ [0, 2].
    SIMILARITY = "similarity"
    #: Worst case: every pair switches oppositely (weight 2).
    WORST = "worst"
    #: Physical coupling only (weight 1) — what "currently existing
    #: literature handles" per the paper's introduction.
    PHYSICAL = "physical"
    #: Eq. 1 read literally: ``max(similarity, 0)`` — for the ablation.
    LITERAL = "literal"


def miller_weight(similarity, mode=MillerMode.SIMILARITY):
    """Switching weight for one or more similarity values.

    Vectorized; validates ``similarity ∈ [−1, 1]`` (up to rounding).
    """
    s = np.asarray(similarity, dtype=float)
    if np.any(s < -1.0 - 1e-9) or np.any(s > 1.0 + 1e-9):
        raise GeometryError("similarity values must lie in [-1, 1]")
    mode = MillerMode(mode)
    if mode is MillerMode.SIMILARITY:
        weight = 1.0 - s
    elif mode is MillerMode.WORST:
        weight = np.full_like(s, 2.0)
    elif mode is MillerMode.PHYSICAL:
        weight = np.ones_like(s)
    else:  # LITERAL
        weight = np.maximum(s, 0.0)
    if np.ndim(similarity) == 0:
        return float(weight)
    return weight
