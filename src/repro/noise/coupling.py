"""Physical coupling capacitance (paper Sec. 3.1, Eq. 2–3, Theorem 1).

The exact inter-wire coupling is hyperbolic in the wire sizes:

    c_ij(x) = ~c_ij / (1 − u),   u = (x_i + x_j) / (2·d_ij),  0 < u < 1

Because ``1/(1−u) = Σ uⁿ``, truncating the series after ``k`` terms gives
a posynomial approximation with relative error exactly ``uᵏ`` (Theorem 1).
The paper presents ``k = 2`` (the linear form ``~c·(1 + u)``) and notes
"extensions to a larger k are simple"; all functions here take the order
as a parameter, and the sizing engine supports k ≥ 2 as an ablation.
"""

import numpy as np

from repro.utils.errors import GeometryError


def _ratio(x_i, x_j, distance):
    x_i = np.asarray(x_i, dtype=float)
    x_j = np.asarray(x_j, dtype=float)
    if np.any(x_i < 0) or np.any(x_j < 0):
        raise GeometryError("wire sizes must be non-negative")
    return (x_i + x_j) / (2.0 * distance)


def coupling_capacitance_exact(ctilde, x_i, x_j, distance):
    """Exact hyperbolic coupling ``~c / (1 − u)`` (Eq. 2); requires u < 1.

    Vectorized over any mix of scalar/array arguments.
    """
    u = _ratio(x_i, x_j, distance)
    if np.any(u >= 1.0):
        raise GeometryError(
            "adjacent wires touch: (x_i + x_j)/2 must stay below the track distance"
        )
    return np.asarray(ctilde) / (1.0 - u)


def coupling_capacitance_taylor(ctilde, x_i, x_j, distance, order=2):
    """Posynomial approximation ``~c · Σ_{n<order} uⁿ`` (Eq. 3 for order=2).

    Unlike the exact form this is defined for every u ≥ 0 (it is the form
    the convex program optimizes), but it only *approximates* coupling
    for u < 1.
    """
    if order < 1:
        raise GeometryError("Taylor order must be >= 1")
    u = _ratio(x_i, x_j, distance)
    total = np.zeros_like(u)
    term = np.ones_like(u)
    for _ in range(order):
        total = total + term
        term = term * u
    return np.asarray(ctilde) * total


def truncation_error_ratio(u, order):
    """Theorem 1(2): the relative error of the ``order``-term truncation.

    ``(f(u) − f̂(u)) / f(u) = uᵏ`` for ``f(u) = 1/(1−u)`` and ``f̂`` the
    first ``k = order`` terms.  Vectorized; requires ``|u| < 1``.
    """
    if order < 1:
        raise GeometryError("Taylor order must be >= 1")
    u = np.asarray(u, dtype=float)
    if np.any(np.abs(u) >= 1.0):
        raise GeometryError("Theorem 1 requires |u| < 1")
    return u ** order


def taylor_derivative_factor(u, order):
    """d/dx_i of the truncated series divided by ``ĉ_ij = ~c/(2d)``.

    With ``u = (x_i + x_j)/(2d)``, the truncated coupling is
    ``~c·Σ_{n<k} uⁿ`` and its derivative w.r.t. ``x_i`` equals
    ``ĉ_ij · Σ_{1≤n<k} n·uⁿ⁻¹``.  For the paper's k = 2 this factor is
    exactly 1, which recovers the closed-form ``opt_i``; for k > 2 the
    sizing engine evaluates it at the current iterate (DESIGN.md §2).
    """
    if order < 1:
        raise GeometryError("Taylor order must be >= 1")
    u = np.asarray(u, dtype=float)
    total = np.zeros_like(u)
    term = np.ones_like(u)
    for n in range(1, order):
        total = total + n * term
        term = term * u
    return total
