"""The weighted coupling structure consumed by the sizing engine.

:class:`CouplingSet` flattens the adjacent-pair geometry (from
:class:`~repro.geometry.layout.ChannelLayout`) and the per-pair Miller
weights (from switching similarity) into NumPy arrays, and evaluates:

* the crosstalk metric/constraint ``X(x) = Σ w_ij · c_ij(x)`` (Eq. 1),
* the per-node sums needed by Theorem 5's ``opt_i``:
  ``Σ_{j∈N(i)} c_ij(x) − x_i·∂c_ij/∂x_i`` (numerator) and
  ``Σ_{j∈N(i)} ∂c_ij/∂x_i`` (denominator).

For the paper's Taylor order k = 2 the derivative ``∂c_ij/∂x_i`` is the
constant ``ĉ_ij`` and the two sums reduce literally to the paper's
``Σ ĉ_ij·x_j`` (plus the constant ``~c_ij`` absorbed in C'_i) and
``Σ ĉ_ij``.  Higher orders evaluate the same quantities at the current
iterate (see DESIGN.md §2 and ``noise/coupling.py``).

All constants here are already Miller-weighted: ``ctilde`` stores
``w_ij · ~c_ij`` and ``chat`` stores ``w_ij · ĉ_ij``, which preserves the
posynomial form because weights are non-negative constants (pairs with
weight 0 — perfect anti-Miller — are dropped).
"""

import collections

import numpy as np

from repro.noise.coupling import taylor_derivative_factor
from repro.noise.miller import MillerMode, miller_weight
from repro.utils.errors import GeometryError

#: Fused per-node coupling terms (see :meth:`CouplingSet.node_terms`).
#: ``node_caps`` is ``None`` unless requested.
CouplingTerms = collections.namedtuple(
    "CouplingTerms", ("cap_sum", "dx_sum", "gamma_slopes", "node_caps"))


class CouplingSet:
    """Miller-weighted adjacent-pair coupling arrays.

    Parameters
    ----------
    num_nodes:
        Size of the node index space (pair endpoints must be below this).
    pairs:
        Iterable of :class:`~repro.geometry.layout.CouplingPair`.
    weights:
        Per-pair Miller weights (same length as ``pairs``); defaults to
        all ones (physical coupling only).
    order:
        Taylor truncation order ``k ≥ 2`` of Eq. 3 (paper default 2).
    """

    def __init__(self, num_nodes, pairs, weights=None, order=2):
        pairs = list(pairs)
        if order < 2:
            raise GeometryError("coupling Taylor order must be >= 2")
        if weights is None:
            weights = np.ones(len(pairs))
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (len(pairs),):
            raise GeometryError("weights must align one-to-one with pairs")
        if np.any(weights < 0):
            raise GeometryError("Miller weights must be non-negative")

        keep = weights > 0.0
        pairs = [p for p, k in zip(pairs, keep) if k]
        weights = weights[keep]

        self.num_nodes = int(num_nodes)
        self.order = int(order)
        self.pair_i = np.array([p.i for p in pairs], dtype=np.int64)
        self.pair_j = np.array([p.j for p in pairs], dtype=np.int64)
        if len(pairs) and (self.pair_i.max(initial=0) >= num_nodes
                           or self.pair_j.max(initial=0) >= num_nodes):
            raise GeometryError("pair endpoint outside the node index space")
        self.distance = np.array([p.distance for p in pairs])
        self.weight = weights
        self.ctilde = weights * np.array([p.ctilde for p in pairs])
        self.chat = weights * np.array([p.chat for p in pairs])
        self._endpoints = np.concatenate([self.pair_i, self.pair_j])
        # Stable endpoint order for the precompiled scatter operator the
        # fused node_terms path builds lazily (see _ensure_scratch).
        self._ep_order = np.ascontiguousarray(
            np.argsort(self._endpoints, kind="stable"))
        self._two_distance = 2.0 * self.distance
        self._scratch = None

    # -- constructors -------------------------------------------------------------

    @classmethod
    def empty(cls, num_nodes, order=2):
        """A coupling-free set (baselines and tests)."""
        return cls(num_nodes, [], order=order)

    @classmethod
    def from_layout(cls, layout, analyzer=None, mode=MillerMode.SIMILARITY, order=2):
        """Extract pairs from ``layout`` and weight them by similarity.

        ``analyzer`` (a :class:`~repro.noise.similarity.SimilarityAnalyzer`)
        is required for the similarity-dependent modes and ignored by
        ``WORST``/``PHYSICAL``.
        """
        pairs = layout.coupling_pairs()
        num_nodes = layout.circuit.num_nodes
        mode = MillerMode(mode)
        if mode in (MillerMode.WORST, MillerMode.PHYSICAL):
            similarity = np.zeros(len(pairs))  # unused by these modes
        else:
            if analyzer is None:
                raise GeometryError(f"MillerMode.{mode.name} needs a SimilarityAnalyzer")
            signed = getattr(analyzer, "signed_values", None)
            if signed is None:
                signed = np.where(analyzer.values, 1.0, -1.0)
            i_idx = np.array([p.i for p in pairs], dtype=np.int64)
            j_idx = np.array([p.j for p in pairs], dtype=np.int64)
            if len(pairs):
                similarity = np.mean(signed[i_idx] * signed[j_idx], axis=1)
            else:
                similarity = np.zeros(0)
        weights = miller_weight(similarity, mode) if len(pairs) else np.zeros(0)
        return cls(num_nodes, pairs, weights=np.atleast_1d(weights), order=order)

    # -- evaluation ---------------------------------------------------------------

    @property
    def num_pairs(self):
        return len(self.pair_i)

    def size_ratio(self, x):
        """Per-pair ``u = (x_i + x_j) / (2·d_ij)``."""
        return (x[self.pair_i] + x[self.pair_j]) / (2.0 * self.distance)

    def pair_caps(self, x):
        """Weighted coupling capacitance per pair, Taylor order ``k`` (fF)."""
        u = self.size_ratio(x)
        total = np.zeros_like(u)
        term = np.ones_like(u)
        for _ in range(self.order):
            total += term
            term = term * u
        return self.ctilde * total

    def pair_caps_exact(self, x):
        """Weighted *hyperbolic* coupling per pair (model-error studies)."""
        u = self.size_ratio(x)
        if np.any(u >= 1.0):
            raise GeometryError("adjacent wires touch at these sizes")
        return self.ctilde / (1.0 - u)

    def total(self, x, exact=False):
        """The crosstalk metric ``X(x)`` in fF (paper reports pF)."""
        if self.num_pairs == 0:
            return 0.0
        caps = self.pair_caps_exact(x) if exact else self.pair_caps(x)
        return float(np.sum(caps))

    def node_sums(self, x):
        """Per-node coupling sums for Theorem 5.

        Returns ``(cap_sum, dx_sum)``, each of length ``num_nodes``:

        * ``cap_sum[i] = Σ_{j∈N(i)} (c_ij(x) − x_i·∂c_ij/∂x_i)`` — the
          coupling contribution to the ``opt_i`` numerator (for k = 2:
          ``Σ (~c_ij + ĉ_ij·x_j)``),
        * ``dx_sum[i] = Σ_{j∈N(i)} ∂c_ij/∂x_i`` — the coupling slope in
          the denominator (for k = 2: ``Σ ĉ_ij``).
        """
        cap_sum = np.zeros(self.num_nodes)
        dx_sum = np.zeros(self.num_nodes)
        if self.num_pairs == 0:
            return cap_sum, dx_sum
        u = self.size_ratio(x)
        caps = self.pair_caps(x)
        slopes = self.chat * taylor_derivative_factor(u, self.order)
        both_caps = np.concatenate([caps, caps])
        both_slopes = np.concatenate([slopes, slopes])
        cap_sum = np.bincount(self._endpoints, weights=both_caps,
                              minlength=self.num_nodes).astype(float)
        dx_sum = np.bincount(self._endpoints, weights=both_slopes,
                             minlength=self.num_nodes).astype(float)
        cap_sum -= x * dx_sum
        return cap_sum, dx_sum

    # -- fused evaluation (solver hot path) ----------------------------------------

    def _ensure_scratch(self):
        p, n = self.num_pairs, self.num_nodes
        if self._scratch is None:
            import types

            from repro.timing import kernels

            # Endpoint scatter as a static unit CSR operator: row i lists
            # the pairs touching node i (in stable endpoint order).
            by_node = [[] for _ in range(n)]
            for pos in self._ep_order:
                by_node[int(self._endpoints[pos])].append(int(pos) % p)
            self._scratch = {
                "op": kernels.CSROp(by_node, n),
                "ws": types.SimpleNamespace(cbuf=np.zeros(2 * p),
                                            sbuf=np.zeros(n)),
                "u": np.zeros(p), "term": np.zeros(p), "tmp": np.zeros(p),
                "caps": np.zeros(p), "slopes": np.zeros(p), "pw": np.zeros(p),
                "cap_sum": np.zeros(n), "dx_sum": np.zeros(n),
                "gamma_slopes": np.zeros(n), "node_caps": np.zeros(n),
                "node_tmp": np.zeros(n),
            }
            if self.order == 2:
                # Paper default k = 2: ∂c_ij/∂x_i = ĉ_ij is constant, so
                # the per-node slope sums never change — scatter once.
                s = self._scratch
                kernels.csr_matvec(s["op"], self.chat, s["dx_sum"], s["ws"])
                s["dx_static"] = s["dx_sum"].copy()
                # Returned to every order-2 node_terms caller: freeze it
                # so accidental in-place mutation fails loudly instead of
                # corrupting all subsequent solves.
                s["dx_static"].setflags(write=False)
        return self._scratch

    def _endpoint_scatter(self, pair_values, out, s):
        """``out[i] = Σ_{pairs touching i} value`` via the static operator."""
        from repro.timing import kernels

        kernels.csr_matvec(s["op"], pair_values, out, s["ws"])

    def node_terms(self, x, gamma, node_caps=False):
        """All Theorem 5 coupling terms in one traversal.

        Returns a :class:`CouplingTerms` with ``cap_sum`` and ``dx_sum``
        exactly as :meth:`node_sums` and ``gamma_slopes`` exactly as
        :meth:`slope_sums` — but the size ratio, the Taylor factors of
        both series, and the endpoint scatter are each evaluated once
        instead of once per method (and with a scalar ``gamma`` the
        slopes are just ``gamma · dx_sum``, no third scatter).  With
        ``node_caps=True`` the per-node total coupling capacitance
        (:meth:`node_coupling_caps`, needed by the ``PROPAGATED`` delay
        mode) rides along for free.

        All returned arrays live in an internal scratch reused by the
        next call — consume them before calling again (the fused LRS
        pass does; allocate via the individual methods otherwise).
        """
        gamma = np.asarray(gamma, dtype=float)
        per_net = gamma.ndim > 0
        if self.num_pairs == 0:
            zeros = np.zeros((4, self.num_nodes))
            return CouplingTerms(zeros[0], zeros[1], zeros[2],
                                 zeros[3] if node_caps else None)
        s = self._ensure_scratch()
        u, term, tmp = s["u"], s["term"], s["tmp"]
        caps, slopes = s["caps"], s["slopes"]
        np.take(x, self.pair_i, out=u)
        np.take(x, self.pair_j, out=tmp)
        np.add(u, tmp, out=u)
        np.divide(u, self._two_distance, out=u)
        if self.order == 2:
            # k = 2 closed form: c = ~c·(1 + u), constant slopes ĉ.
            np.multiply(u, self.ctilde, out=caps)
            np.add(caps, self.ctilde, out=caps)
            slopes = self.chat
        else:
            # Joint Taylor evaluation: caps ← Σ_{n<k} uⁿ, slopes ← Σ n·uⁿ⁻¹.
            caps.fill(1.0)
            slopes.fill(0.0)
            term.fill(1.0)
            for n in range(1, self.order):
                np.multiply(term, float(n), out=tmp)
                np.add(slopes, tmp, out=slopes)
                np.multiply(term, u, out=term)
                np.add(caps, term, out=caps)
            np.multiply(caps, self.ctilde, out=caps)
            np.multiply(slopes, self.chat, out=slopes)

        cap_sum, dx_sum, gs = s["cap_sum"], s["dx_sum"], s["gamma_slopes"]
        self._endpoint_scatter(caps, cap_sum, s)
        if self.order == 2:
            dx_sum = s["dx_static"]
        else:
            self._endpoint_scatter(slopes, dx_sum, s)
        out_caps = None
        if node_caps:
            out_caps = s["node_caps"]
            np.copyto(out_caps, cap_sum)
        if per_net:
            pw = s["pw"]
            np.take(gamma, self.owner, out=pw)
            np.multiply(pw, slopes, out=pw)
            self._endpoint_scatter(pw, gs, s)
        else:
            np.multiply(dx_sum, float(gamma), out=gs)
        np.multiply(x, dx_sum, out=s["node_tmp"])
        np.subtract(cap_sum, s["node_tmp"], out=cap_sum)
        return CouplingTerms(cap_sum, dx_sum, gs, out_caps)

    # -- batched evaluation (K scenarios in lockstep) -------------------------------

    def _ensure_batch_scratch(self, k):
        """Width-``k`` scratch for the column-stacked paths (memoized).

        Shares the static endpoint-scatter operator (and, for k = 2, the
        frozen slope sums) with the scalar scratch; the ``(p, 1)``
        column views of the pair constants broadcast against ``(p, k)``
        iterates without per-call view creation.
        """
        base = self._ensure_scratch()
        cache = self.__dict__.setdefault("_batch_scratch", {})
        s = cache.pop(k, None)
        if s is not None:
            cache[k] = s   # refresh recency (insertion order == LRU order)
        if s is None:
            import types

            p, n = self.num_pairs, self.num_nodes
            s = {
                "op": base["op"],
                "ws": types.SimpleNamespace(cbuf=np.zeros((2 * p, k)),
                                            sbuf=np.zeros((n, k))),
                "u": np.zeros((p, k)), "term": np.zeros((p, k)),
                "tmp": np.zeros((p, k)), "caps": np.zeros((p, k)),
                "slopes": np.zeros((p, k)), "pw": np.zeros((p, k)),
                "cap_sum": np.zeros((n, k)), "dx_sum": np.zeros((n, k)),
                "gamma_slopes": np.zeros((n, k)),
                "node_caps": np.zeros((n, k)), "node_tmp": np.zeros((n, k)),
            }
            if self.order == 2:
                s["dx_static_col"] = base["dx_static"][:, None]
            if "_ctilde_col" not in self.__dict__:
                self._ctilde_col = self.ctilde[:, None]
                self._chat_col = self.chat[:, None]
                self._two_distance_col = self._two_distance[:, None]
            # Same LRU bound as kernels.BatchWorkspace: a batch visiting
            # many widths must not pool scratch for every one of them.
            while len(cache) >= 6:
                cache.pop(next(iter(cache)))
            cache[k] = s
        return s

    def node_terms_batch(self, x, gamma, node_caps=False):
        """:meth:`node_terms` over column-stacked ``(n, K)`` iterates.

        ``gamma`` is a ``(K,)`` vector of per-scenario scalar multipliers
        or an ``(n, K)`` matrix of per-net multipliers (one column per
        scenario).  Every column of the returned arrays is bit-identical
        to :meth:`node_terms` at that column — same elementwise
        operations, same per-node accumulation order through the shared
        endpoint-scatter operator.  Returned arrays live in width-keyed
        scratch reused by the next batched call.
        """
        k = x.shape[1]
        gamma = np.asarray(gamma, dtype=float)
        per_net = gamma.ndim == 2
        if self.num_pairs == 0:
            zeros = np.zeros((4, self.num_nodes, k))
            return CouplingTerms(zeros[0], zeros[1], zeros[2],
                                 zeros[3] if node_caps else None)
        s = self._ensure_batch_scratch(k)
        u, term, tmp = s["u"], s["term"], s["tmp"]
        caps, slopes = s["caps"], s["slopes"]
        np.take(x, self.pair_i, axis=0, out=u)
        np.take(x, self.pair_j, axis=0, out=tmp)
        np.add(u, tmp, out=u)
        np.divide(u, self._two_distance_col, out=u)
        if self.order == 2:
            # k = 2 closed form: c = ~c·(1 + u), constant slopes ĉ.
            np.multiply(u, self._ctilde_col, out=caps)
            np.add(caps, self._ctilde_col, out=caps)
            slopes = self._chat_col
        else:
            caps.fill(1.0)
            slopes.fill(0.0)
            term.fill(1.0)
            for order_n in range(1, self.order):
                np.multiply(term, float(order_n), out=tmp)
                np.add(slopes, tmp, out=slopes)
                np.multiply(term, u, out=term)
                np.add(caps, term, out=caps)
            np.multiply(caps, self._ctilde_col, out=caps)
            np.multiply(slopes, self._chat_col, out=slopes)

        cap_sum, dx_sum, gs = s["cap_sum"], s["dx_sum"], s["gamma_slopes"]
        self._endpoint_scatter(caps, cap_sum, s)
        if self.order == 2:
            dx_sum = s["dx_static_col"]
        else:
            self._endpoint_scatter(slopes, dx_sum, s)
        out_caps = None
        if node_caps:
            out_caps = s["node_caps"]
            np.copyto(out_caps, cap_sum)
        if per_net:
            pw = s["pw"]
            np.take(gamma, self.owner, axis=0, out=pw)
            np.multiply(pw, slopes, out=pw)
            self._endpoint_scatter(pw, gs, s)
        else:
            np.multiply(dx_sum, gamma, out=gs)
        np.multiply(x, dx_sum, out=s["node_tmp"])
        np.subtract(cap_sum, s["node_tmp"], out=cap_sum)
        return CouplingTerms(cap_sum, dx_sum, gs, out_caps)

    def node_coupling_caps(self, x):
        """Per-node total coupling cap ``Σ_{j∈N(i)} c_ij(x)`` (delay model).

        Accepts ``(n,)`` or column-stacked ``(n, K)`` sizes.  The batched
        branch replays :meth:`pair_caps`'s exact accumulation per column
        and scatters through the static endpoint operator, whose
        per-node addition order matches the scalar ``bincount`` bitwise
        (stable endpoint sort).
        """
        if x.ndim == 2:
            k = x.shape[1]
            if self.num_pairs == 0:
                return np.zeros((self.num_nodes, k))
            s = self._ensure_batch_scratch(k)
            u, term, total = s["u"], s["term"], s["tmp"]
            np.take(x, self.pair_i, axis=0, out=u)
            np.take(x, self.pair_j, axis=0, out=total)
            np.add(u, total, out=u)
            np.divide(u, self._two_distance_col, out=u)
            # pair_caps' spelling verbatim: Σ_{m<k} uᵐ, then ·~c.
            total.fill(0.0)
            term.fill(1.0)
            for _ in range(self.order):
                np.add(total, term, out=total)
                np.multiply(term, u, out=term)
            np.multiply(total, self._ctilde_col, out=total)
            out = np.empty((self.num_nodes, k))
            self._endpoint_scatter(total, out, s)
            return out
        if self.num_pairs == 0:
            return np.zeros(self.num_nodes)
        caps = self.pair_caps(x)
        return np.bincount(self._endpoints, weights=np.concatenate([caps, caps]),
                           minlength=self.num_nodes).astype(float)

    def totals_batch(self, x):
        """``X(x)`` for column-stacked ``(n, K)`` sizes, one value per column.

        Column ``j`` is bitwise-equal to :meth:`total` at that column:
        the per-pair capacitances replay :meth:`pair_caps`'s spelling
        over the batch scratch, and each column is summed as a
        contiguous vector (row of one transposed copy) — the exact
        pairwise reduction ``np.sum`` runs on the scalar path.
        """
        k = x.shape[1]
        if self.num_pairs == 0:
            return np.zeros(k)
        s = self._ensure_batch_scratch(k)
        u, term, total = s["u"], s["term"], s["tmp"]
        np.take(x, self.pair_i, axis=0, out=u)
        np.take(x, self.pair_j, axis=0, out=total)
        np.add(u, total, out=u)
        np.divide(u, self._two_distance_col, out=u)
        total.fill(0.0)
        term.fill(1.0)
        for _ in range(self.order):
            np.add(total, term, out=total)
            np.multiply(term, u, out=term)
        np.multiply(total, self._ctilde_col, out=total)
        cols = np.ascontiguousarray(total.T)
        return np.array([np.sum(col) for col in cols])

    # -- per-net (distributed-bound) views ----------------------------------------

    @property
    def owner(self):
        """Constraint owner of each pair: the dominating-index convention.

        The paper sums pair ``(i, j)`` into wire ``i``'s term via
        ``j ∈ I(i)`` (neighbors with larger index), so the lower-index
        wire owns the pair.  Used by the distributed-bound extension.
        """
        return self.pair_i

    def net_caps(self, x):
        """Per-node owned crosstalk ``X_i(x) = Σ_{j∈I(i)} c_ij(x)`` (fF).

        Summing over owners: ``net_caps(x).sum() == total(x)``.
        """
        out = np.zeros(self.num_nodes)
        if self.num_pairs:
            out = np.bincount(self.owner, weights=self.pair_caps(x),
                              minlength=self.num_nodes).astype(float)
        return out

    def slope_sums(self, x, gamma):
        """Per-node γ-weighted coupling slopes for Theorem 5's denominator.

        ``Σ_{j∈N(i)} γ_owner(i,j) · ∂c_ij/∂x_i``, where ``gamma`` is the
        scalar crosstalk multiplier (paper) or a per-node array (the
        distributed-bound extension; entry read at each pair's owner).
        With a scalar this equals ``gamma · node_sums(x)[1]`` exactly.
        """
        if self.num_pairs == 0:
            return np.zeros(self.num_nodes)
        u = self.size_ratio(x)
        slopes = self.chat * taylor_derivative_factor(u, self.order)
        gamma = np.asarray(gamma, dtype=float)
        pair_gamma = gamma[self.owner] if gamma.ndim else np.full(
            self.num_pairs, float(gamma))
        weighted = pair_gamma * slopes
        return np.bincount(self._endpoints,
                           weights=np.concatenate([weighted, weighted]),
                           minlength=self.num_nodes).astype(float)

    @property
    def nbytes(self):
        total = 0
        for value in vars(self).values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
        return total

    def __repr__(self):
        return f"CouplingSet(pairs={self.num_pairs}, order={self.order})"
