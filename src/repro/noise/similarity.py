"""Switching similarity (paper Sec. 3.2).

    similarity(i, j) = ∫₀ᵀ f(i,t)·f(j,t) dt / T  ∈ [−1, 1]

Two forms are provided:

* **cycle-accurate** (default): node values come from the levelized
  zero-delay simulator; with one ±1 value per cycle the integral reduces
  to the mean of the per-cycle products — a single matrix product over
  all wires at once;
* **time-domain**: exact integration of event-driven waveforms, capturing
  glitches, via :meth:`Waveform.product_integral`.

:class:`SimilarityAnalyzer` wraps simulation + caching so the ordering
stage can ask for per-channel similarity matrices cheaply.
"""

import numpy as np

from repro.simulate.levelized import simulate_levelized
from repro.simulate.patterns import random_patterns
from repro.utils.errors import SimulationError


def similarity_from_values(values, indices=None):
    """Pairwise similarity matrix from boolean per-cycle values.

    Parameters
    ----------
    values:
        Boolean array ``(num_nodes, n_patterns)`` from
        :func:`simulate_levelized` (or any per-cycle signal matrix).
    indices:
        Optional node indices selecting the rows to correlate (e.g. one
        channel's wires); defaults to all rows.

    Returns the symmetric matrix ``S`` with ``S[a, b] = similarity``
    between selected rows ``a`` and ``b`` (diagonal exactly 1).
    """
    values = np.asarray(values, dtype=bool)
    if values.ndim != 2 or values.shape[1] == 0:
        raise SimulationError("values must be (nodes, patterns) with >= 1 pattern")
    rows = values if indices is None else values[np.asarray(indices, dtype=np.int64)]
    signed = np.where(rows, 1.0, -1.0)
    matrix = signed @ signed.T / signed.shape[1]
    np.fill_diagonal(matrix, 1.0)
    return matrix


def similarity_from_waveforms(waveforms):
    """Exact pairwise similarity of a list of :class:`Waveform` objects.

    O(n² · transitions); intended for single channels or demos.
    """
    n = len(waveforms)
    if n == 0:
        raise SimulationError("need at least one waveform")
    matrix = np.eye(n)
    for a in range(n):
        for b in range(a + 1, n):
            matrix[a, b] = matrix[b, a] = waveforms[a].similarity(waveforms[b])
    return matrix


class SimilarityAnalyzer:
    """Runs logic simulation once and serves per-channel similarity.

    Per-channel results are memoized by index tuple around one shared
    Gram cache: each distinct channel's ±1 Gram product — the expensive
    matmul — is computed once, and :meth:`matrix` / :meth:`matrices`,
    :meth:`sort_keys` / :meth:`sort_keys_many`,
    :meth:`path_dissimilarity`, and :meth:`pair` all read through it
    (returned arrays are frozen read-only).  The batched accessors
    answer many channels at once — one block gather of all missing rows
    from the simulated values, one signed ``±1`` conversion, then one
    matmul per missing channel over contiguous row blocks — so the
    ordering stage never pays a per-channel fancy-index round-trip.
    ``cache_hits``/``cache_misses`` count channel lookups through the
    public accessors, hit ⇔ the Gram was already cached (pinned by
    ``tests/noise/test_similarity.py``).

    Parameters
    ----------
    circuit:
        The circuit to analyze.
    patterns:
        Boolean pattern matrix; defaults to ``n_patterns`` seeded random
        vectors (the paper takes patterns "from the logic simulation
        stage"; see DESIGN.md §3).
    n_patterns, seed:
        Used only when ``patterns`` is not supplied.
    backend:
        Simulation backend (``"plan"`` default or ``"reference"``), see
        :func:`~repro.simulate.levelized.simulate_levelized`.
    """

    def __init__(self, circuit, patterns=None, n_patterns=256, seed=0,
                 backend="plan"):
        self.circuit = circuit
        if patterns is None:
            patterns = random_patterns(circuit.num_drivers, n_patterns, seed=seed)
        self.patterns = np.asarray(patterns, dtype=bool)
        self._values = simulate_levelized(circuit, self.patterns,
                                          backend=backend)
        self._grams = {}
        self._matrices = {}
        self._keys = {}
        self._signed = None
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def values(self):
        """Node-by-pattern boolean matrix from the levelized simulation."""
        return self._values

    @property
    def signed_values(self):
        """The values as a float ``±1`` matrix (lazy, computed once).

        Shared by :meth:`matrices` and the Miller-weighting path in
        :meth:`CouplingSet.from_layout`, which previously each re-ran
        the full ``bool → ±1`` conversion.
        """
        if self._signed is None:
            self._signed = np.where(self._values, 1.0, -1.0)
            self._signed.setflags(write=False)
        return self._signed

    def matrix(self, indices):
        """Similarity matrix over the node ``indices`` (a channel, usually).

        Memoized per index tuple; the returned array is read-only (it is
        shared with every later caller — copy before mutating).
        """
        return self.matrices([indices])[0]

    def _lookup(self, index_groups):
        """Normalize groups to tuples, counting cache hits/misses.

        A group counts as a *hit* when its Gram product — the expensive
        part — is already cached, regardless of which accessor computed
        it first.
        """
        if self._values.shape[1] == 0:
            raise SimulationError("values must be (nodes, patterns) with >= 1 pattern")
        groups = [g if type(g) is tuple else tuple(int(i) for i in g)
                  for g in index_groups]
        for g in groups:
            if g in self._grams:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
        return groups

    def _ensure_grams(self, groups):
        """Compute the missing groups' ±1 Gram products in one batch.

        One boolean block gather + one ±1 conversion for every missing
        channel (converting only the rows actually needed, not the whole
        node set), then one matmul per channel over its contiguous slice
        of the block.  The product of ±1 rows is a sum of ±1 terms
        bounded by ``n_patterns``, so every partial sum is an exactly
        representable integer even in float32 — the single-precision
        matmul (about twice the dgemm throughput) gives bitwise-identical
        similarity as long as ``n_patterns`` stays below 2**23.  The
        integer distance keys ``2d = P − Σ±1`` (twice the Hamming
        distance — halving would only cost another full pass) fall out
        of the same product, exact in either precision; ``int16`` so
        WOSS can sort them fast.
        """
        missing = sorted({g for g in groups if g and g not in self._grams})
        if not missing:
            return
        rows_idx = np.fromiter(
            (i for g in missing for i in g), dtype=np.int64,
            count=sum(len(g) for g in missing))
        n_patterns = self._values.shape[1]
        use_f32 = n_patterns <= 2 ** 23
        # bool → ±1 via a widening cast plus two in-place passes
        # (np.where with scalar branches is ~3× slower here).
        block = self._values[rows_idx].astype(
            np.float32 if use_f32 else np.float64)
        block *= 2.0
        block -= 1.0
        offset = 0
        for g in missing:
            rows = block[offset:offset + len(g)]
            offset += len(g)
            raw = rows @ rows.T
            raw.setflags(write=False)
            self._grams[g] = raw
            if n_patterns <= 16383:  # keys reach 2P; int16 tops at 32767
                keys = (n_patterns - raw).astype(np.int16)
                keys.setflags(write=False)
                self._keys[g] = keys

    def matrices(self, index_groups):
        """Similarity matrices for many channels in one batched pass.

        Missing channels are computed together (see
        :meth:`_ensure_grams`); the float64 similarity matrix of each
        requested group is materialized from its cached Gram on first
        request.  Returns one (cached, read-only) matrix per input
        group, in order.
        """
        groups = self._lookup(index_groups)
        self._ensure_grams(groups)
        n_patterns = self._values.shape[1]
        for g in set(groups):
            if g and g not in self._matrices:
                matrix = self._grams[g].astype(np.float64)
                matrix /= n_patterns
                np.fill_diagonal(matrix, 1.0)
                matrix.setflags(write=False)
                self._matrices[g] = matrix
        return [self._matrices[g] if g else similarity_from_values(
            self._values, g) for g in groups]

    def sort_keys_many(self, index_groups):
        """Integer ordering keys for many channels in one batched pass.

        Same batching as :meth:`matrices`, but returns the channels'
        read-only ``int16`` distance matrices (twice the pairwise
        Hamming distance) without materializing their float64
        similarity: the key ``2d[a, b]`` is an exact monotone image of
        the ordering weight ``1 − similarity = 2d/P`` — within any row
        (and globally), keys compare and tie exactly as the weights do.
        :func:`~repro.noise.ordering.woss_ordering` uses them to replace
        its per-step masked argmin with one sorted prefix walk.
        ``None`` entries mark unavailable groups (empty channel, or more
        than 16383 patterns — keys reach ``2P``, beyond ``int16``).
        """
        groups = self._lookup(index_groups)
        self._ensure_grams(groups)
        return [self._keys.get(g) for g in groups]

    def sort_keys(self, indices):
        """Ordering keys for one channel — see :meth:`sort_keys_many`."""
        return self.sort_keys_many([indices])[0]

    def path_dissimilarity(self, indices, order=None):
        """Σ ``1 − similarity`` over adjacent pairs — one channel's
        stage-1 ordering cost.

        ``order`` is a position permutation (default: the given track
        order).  Computed by gathering the cached Gram entries, without
        materializing the channel's float64 matrix; bitwise-equal to
        summing ``1 − matrix(indices)`` over the same pairs, since the
        elementwise ``1 − s`` commutes with the gather.
        """
        g = indices if type(indices) is tuple else tuple(
            int(i) for i in indices)
        if len(g) < 2:
            return 0.0
        self._ensure_grams([g])
        raw = self._grams[g]
        if order is None:
            s = np.diagonal(raw, 1).astype(np.float64)
        else:
            idx = np.asarray(order, dtype=np.int64)
            s = raw[idx[:-1], idx[1:]].astype(np.float64)
        s /= self._values.shape[1]
        return float(np.sum(1.0 - s))

    def pair(self, i, j):
        """Similarity between node indices ``i`` and ``j`` (cached)."""
        return float(self.matrix([i, j])[0, 1])

    def toggle_rate(self, index):
        """Fraction of consecutive cycles on which node ``index`` changes."""
        row = self._values[index]
        if row.size < 2:
            return 0.0
        return float(np.mean(row[1:] != row[:-1]))
