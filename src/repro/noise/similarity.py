"""Switching similarity (paper Sec. 3.2).

    similarity(i, j) = ∫₀ᵀ f(i,t)·f(j,t) dt / T  ∈ [−1, 1]

Two forms are provided:

* **cycle-accurate** (default): node values come from the levelized
  zero-delay simulator; with one ±1 value per cycle the integral reduces
  to the mean of the per-cycle products — a single matrix product over
  all wires at once;
* **time-domain**: exact integration of event-driven waveforms, capturing
  glitches, via :meth:`Waveform.product_integral`.

:class:`SimilarityAnalyzer` wraps simulation + caching so the ordering
stage can ask for per-channel similarity matrices cheaply.
"""

import numpy as np

from repro.simulate.levelized import simulate_levelized
from repro.simulate.patterns import random_patterns
from repro.utils.errors import SimulationError


def similarity_from_values(values, indices=None):
    """Pairwise similarity matrix from boolean per-cycle values.

    Parameters
    ----------
    values:
        Boolean array ``(num_nodes, n_patterns)`` from
        :func:`simulate_levelized` (or any per-cycle signal matrix).
    indices:
        Optional node indices selecting the rows to correlate (e.g. one
        channel's wires); defaults to all rows.

    Returns the symmetric matrix ``S`` with ``S[a, b] = similarity``
    between selected rows ``a`` and ``b`` (diagonal exactly 1).
    """
    values = np.asarray(values, dtype=bool)
    if values.ndim != 2 or values.shape[1] == 0:
        raise SimulationError("values must be (nodes, patterns) with >= 1 pattern")
    rows = values if indices is None else values[np.asarray(indices, dtype=np.int64)]
    signed = np.where(rows, 1.0, -1.0)
    matrix = signed @ signed.T / signed.shape[1]
    np.fill_diagonal(matrix, 1.0)
    return matrix


def similarity_from_waveforms(waveforms):
    """Exact pairwise similarity of a list of :class:`Waveform` objects.

    O(n² · transitions); intended for single channels or demos.
    """
    n = len(waveforms)
    if n == 0:
        raise SimulationError("need at least one waveform")
    matrix = np.eye(n)
    for a in range(n):
        for b in range(a + 1, n):
            matrix[a, b] = matrix[b, a] = waveforms[a].similarity(waveforms[b])
    return matrix


class SimilarityAnalyzer:
    """Runs logic simulation once and serves per-channel similarity.

    Parameters
    ----------
    circuit:
        The circuit to analyze.
    patterns:
        Boolean pattern matrix; defaults to ``n_patterns`` seeded random
        vectors (the paper takes patterns "from the logic simulation
        stage"; see DESIGN.md §3).
    n_patterns, seed:
        Used only when ``patterns`` is not supplied.
    """

    def __init__(self, circuit, patterns=None, n_patterns=256, seed=0):
        self.circuit = circuit
        if patterns is None:
            patterns = random_patterns(circuit.num_drivers, n_patterns, seed=seed)
        self.patterns = np.asarray(patterns, dtype=bool)
        self._values = simulate_levelized(circuit, self.patterns)

    @property
    def values(self):
        """Node-by-pattern boolean matrix from the levelized simulation."""
        return self._values

    def matrix(self, indices):
        """Similarity matrix over the node ``indices`` (a channel, usually)."""
        return similarity_from_values(self._values, indices)

    def pair(self, i, j):
        """Similarity between node indices ``i`` and ``j``."""
        return float(self.matrix([i, j])[0, 1])

    def toggle_rate(self, index):
        """Fraction of consecutive cycles on which node ``index`` changes."""
        row = self._values[index]
        if row.size < 2:
            return 0.0
        return float(np.mean(row[1:] != row[:-1]))
