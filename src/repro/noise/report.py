"""Per-net crosstalk reporting.

Turns a coupling set + sizing point into the victim-oriented view a
noise sign-off wants: which nets own the most (Miller-weighted)
coupling, how close each sits to its budget, and which aggressor pairs
dominate.  Used by the bus example and the distributed-bounds bench.
"""

import dataclasses

import numpy as np

from repro.utils.errors import GeometryError
from repro.utils.tables import format_table


@dataclasses.dataclass(frozen=True)
class VictimRecord:
    """One net's crosstalk situation at a sizing point."""

    net: int                 # owning wire's node index
    name: str                # node name
    noise_ff: float          # owned Σ c_ij
    n_pairs: int             # pairs owned
    bound_ff: float          # per-net bound (inf if unconstrained)
    utilization: float       # noise/bound (0 when unbounded)
    worst_pair: tuple        # (other node index, cap fF) of the top aggressor


def victim_records(circuit, coupling, x, bounds=None):
    """Per-owning-net records, sorted by descending owned noise.

    ``bounds`` is a per-node array of noise bounds (fF; inf = none), e.g.
    ``DistributedSizingProblem.noise_bounds_ff``.
    """
    if coupling.num_nodes != circuit.num_nodes:
        raise GeometryError("coupling set does not match the circuit")
    if bounds is None:
        bounds = np.full(circuit.num_nodes, np.inf)
    bounds = np.asarray(bounds, dtype=float)
    caps = coupling.pair_caps(x)
    per_net = {}
    for p in range(coupling.num_pairs):
        owner = int(coupling.owner[p])
        other = int(coupling.pair_j[p]) if owner == int(coupling.pair_i[p]) \
            else int(coupling.pair_i[p])
        entry = per_net.setdefault(owner, {"noise": 0.0, "pairs": 0,
                                           "worst": (other, 0.0)})
        entry["noise"] += float(caps[p])
        entry["pairs"] += 1
        if caps[p] > entry["worst"][1]:
            entry["worst"] = (other, float(caps[p]))
    records = []
    for net, entry in per_net.items():
        bound = float(bounds[net])
        util = entry["noise"] / bound if np.isfinite(bound) and bound > 0 else 0.0
        records.append(VictimRecord(
            net=net, name=circuit.node(net).name, noise_ff=entry["noise"],
            n_pairs=entry["pairs"], bound_ff=bound, utilization=util,
            worst_pair=entry["worst"],
        ))
    records.sort(key=lambda r: -r.noise_ff)
    return records


def noise_report(circuit, coupling, x, bounds=None, top=10,
                 title="per-net crosstalk report"):
    """Monospace victim table (top ``top`` nets by owned noise)."""
    records = victim_records(circuit, coupling, x, bounds=bounds)
    rows = []
    for r in records[:top]:
        bound = f"{r.bound_ff:.2f}" if np.isfinite(r.bound_ff) else "-"
        util = f"{r.utilization:.0%}" if r.utilization else "-"
        aggressor = circuit.node(r.worst_pair[0]).name
        rows.append([r.name, r.n_pairs, r.noise_ff, bound, util,
                     f"{aggressor} ({r.worst_pair[1]:.2f} fF)"])
    table = format_table(
        ["victim net", "pairs", "noise (fF)", "bound", "util",
         "worst aggressor"],
        rows, title=title, floatfmt="{:.3f}")
    total = sum(r.noise_ff for r in records)
    return table + f"\ntotal weighted crosstalk: {total / 1e3:.3f} pF over " \
                   f"{len(records)} owning nets"
