"""Crosstalk modeling (paper Sec. 3) and the ordering stage.

* :mod:`~repro.noise.coupling` — physical coupling capacitance, its
  posynomial Taylor truncation, and the Theorem 1 error bound,
* :mod:`~repro.noise.similarity` — switching similarity from levelized
  values or time-domain waveforms,
* :mod:`~repro.noise.miller` — Miller / anti-Miller weighting modes,
* :mod:`~repro.noise.ordering` — the WOSS heuristic (Fig. 7) plus exact
  and baseline orderings for the NP-hard ``SS`` problem,
* :mod:`~repro.noise.crosstalk` — :class:`CouplingSet`, the vectorized
  weighted-coupling structure consumed by the sizing engine.
"""

from repro.noise.coupling import (
    coupling_capacitance_exact,
    coupling_capacitance_taylor,
    truncation_error_ratio,
)
from repro.noise.crosstalk import CouplingSet
from repro.noise.miller import MillerMode, miller_weight
from repro.noise.report import noise_report, victim_records
from repro.noise.ordering import (
    exact_ordering,
    ordering_cost,
    random_ordering,
    two_opt_improve,
    woss_ordering,
)
from repro.noise.similarity import (
    SimilarityAnalyzer,
    similarity_from_values,
    similarity_from_waveforms,
)

__all__ = [
    "coupling_capacitance_exact",
    "coupling_capacitance_taylor",
    "truncation_error_ratio",
    "MillerMode",
    "miller_weight",
    "woss_ordering",
    "exact_ordering",
    "random_ordering",
    "two_opt_improve",
    "ordering_cost",
    "SimilarityAnalyzer",
    "similarity_from_values",
    "similarity_from_waveforms",
    "CouplingSet",
    "noise_report",
    "victim_records",
]
