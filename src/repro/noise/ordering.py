"""Wire ordering for the Switching Similarity (``SS``) problem.

Given ``n`` wires and the pairwise weight ``1 − similarity(i,j)``, find a
track ordering minimizing the total effective loading between neighbors
``Σ weight(w_k, w_{k+1})`` — an open-path TSP.  The problem is NP-hard
and admits no constant-factor approximation (paper Theorems 2); the paper
proposes the greedy WOSS heuristic (Fig. 7).

This module implements WOSS exactly as printed, plus baselines used by
the ordering-quality ablation: exact Held–Karp for small channels, 2-opt
improvement, a both-ends greedy extension, and random orderings.

All functions take a symmetric weight matrix over channel *positions* and
return a permutation of positions (apply it to the channel via
:meth:`Channel.reordered`).
"""

import itertools

import numpy as np

from repro.utils.errors import GeometryError
from repro.utils.rng import make_rng


def _check_weights(weights):
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise GeometryError("weights must be a square matrix")
    if weights.shape[0] == 0:
        raise GeometryError("weights must be non-empty")
    if not np.allclose(weights, weights.T):
        raise GeometryError("weights must be symmetric")
    return weights


def _path_cost(order, weights):
    """Σ weight of adjacent pairs, without validation (one fancy-index)."""
    idx = np.asarray(order, dtype=np.int64)
    return float(np.sum(weights[idx[:-1], idx[1:]]))


def ordering_cost(order, weights):
    """Total effective loading of ``order``: Σ weight of adjacent pairs."""
    weights = _check_weights(weights)
    order = list(order)
    if sorted(order) != list(range(weights.shape[0])):
        raise GeometryError("order must be a permutation of 0..n-1")
    return _path_cost(order, weights)


def woss_ordering(weights, sort_keys=None):
    """The paper's WOSS heuristic (Fig. 7), verbatim.

    A1: start with the minimum-weight edge ``(w1, w2)``.
    A2: repeatedly extend from the current *tail* ``w_{k-1}`` along its
    minimum-weight edge to an unvisited node.

    O(n²) overall.  Returns a position permutation.

    ``sort_keys`` optionally accelerates both steps without changing the
    result: an integer matrix whose entries order (and tie) exactly as
    ``weights`` does off the diagonal, globally as well as within each
    row — e.g. the scaled Hamming-distance keys ``2d`` from
    :meth:`SimilarityAnalyzer.sort_keys`, since the weight ``1 − s =
    2d/P`` is strictly increasing in the integer distance ``d``.  With
    keys the per-step A2 masked argmin (lowest index among unvisited
    minima) becomes one stable argsort of the keys — stable sort breaks
    ties by index, radix-fast for ``int16`` — plus a pointer walk that
    skips visited entries; the A1 start edge falls out of the same
    argsort (each row's first non-diagonal sorted entry).  The keys
    fully determine the result, so ``weights`` may then be ``None`` —
    the flow's fast path never materializes the float weight matrix at
    all.  The caller asserts the keys' monotone-equivalence contract
    *and* the weights' symmetry: the keys path checks shapes only,
    skipping :func:`_check_weights`'s O(n²) symmetry test (the flow
    builds both from one symmetric similarity matrix).  Equality with
    the reference loop is pinned by ``tests/noise/test_ordering.py``.
    """
    if sort_keys is not None:
        sort_keys = np.asarray(sort_keys)
        if sort_keys.ndim != 2 or sort_keys.shape[0] != sort_keys.shape[1] \
                or sort_keys.shape[0] == 0:
            raise GeometryError("sort_keys must be a non-empty square matrix")
        if weights is not None:
            weights = np.asarray(weights, dtype=float)
            if sort_keys.shape != weights.shape:
                raise GeometryError("sort_keys must match the weights shape")
        n = sort_keys.shape[0]
        if n == 1:
            return [0]
        if not np.issubdtype(sort_keys.dtype, np.integer):
            raise GeometryError("sort_keys must be an integer matrix")
        if n > 0xFFFF:
            raise GeometryError("sort_keys path limited to 65535 wires")
        unsigned = np.issubdtype(sort_keys.dtype, np.unsignedinteger)
        bad = False
        if sort_keys.itemsize > 2:
            bad = sort_keys.max() > 0xFFFF or (
                not unsigned and sort_keys.min() < 0)
        elif not unsigned:
            bad = sort_keys.min() < 0
        if bad:
            raise GeometryError(
                "sort_keys entries must fit 16 unsigned bits")
        # Combined key ``key·2¹⁶ | column`` makes the stable (key, index)
        # order a plain value order with no ties, so a *partial* sort is
        # exact: partition the 64 smallest per row, sort only those.
        # The walk rarely looks past the first few unvisited entries; a
        # row that does exhaust its prefix (ties run deep) falls back to
        # sorting that one full row on demand.
        comb = sort_keys.astype(np.uint32)
        comb <<= 16
        comb |= np.arange(n, dtype=np.uint32)[None, :]
        m = min(n, 64)
        pref = comb if m == n else np.partition(comb, m - 1, axis=1)[:, :m]
        pref = np.sort(pref, axis=1)
        # A1 from the same prefix: each row's best off-diagonal partner
        # is its first sorted entry that is not the row itself (position
        # 0 or 1), and the flat argmin's row-major tie-break — lowest
        # row, then lowest column — is exactly "first row achieving the
        # global minimum, stable-lowest column within it".
        arange = np.arange(n)
        c0 = (pref[:, 0] & np.uint32(0xFFFF)).astype(np.int64)
        cand = np.where(c0 == arange, pref[:, 1], pref[:, 0])
        w1 = int(np.argmin(cand >> np.uint32(16)))
        w2 = int(cand[w1] & 0xFFFF)
        order = [w1, w2]
        # The walk only needs column indices, so strip the key half once
        # over the narrow prefix (n×m, not n×n).  Rows are walked only
        # when their node is the tail, so the diagonal entry (the
        # already-visited node itself) never needs masking.  Chunks are
        # converted to Python ints at once — per-element NumPy scalar
        # indexing costs ~10× a list access, and tie-heavy similarity
        # rows make tens of skips per step common.
        prefj = (pref & np.uint32(0xFFFF)).astype(np.int32)
        visited = bytearray(n)
        visited[w1] = visited[w2] = 1
        tail = w2
        for _ in range(n - 2):
            row = prefj[tail]
            p = 0
            nxt = -1
            while nxt < 0:
                chunk = row[p:p + 48].tolist()
                if not chunk:
                    # Prefix exhausted — its first m entries were all
                    # visited.  Sort the full row once and resume just
                    # past the already-scanned prefix.
                    row = (np.sort(comb[tail]) & np.uint32(0xFFFF)) \
                        .astype(np.int32)
                    p = m
                    chunk = row[p:p + 48].tolist()
                for j in chunk:
                    if not visited[j]:
                        nxt = j
                        break
                p += 48
            tail = nxt
            visited[tail] = 1
            order.append(tail)
        return order
    weights = _check_weights(weights)
    n = weights.shape[0]
    if n == 1:
        return [0]
    masked = weights.astype(float).copy()
    np.fill_diagonal(masked, np.inf)
    start = int(np.argmin(masked))
    w1, w2 = divmod(start, n)
    order = [int(w1), int(w2)]
    visited = np.zeros(n, dtype=bool)
    visited[w1] = visited[w2] = True
    while len(order) < n:
        tail = order[-1]
        row = np.where(visited, np.inf, masked[tail])
        order.append(int(np.argmin(row)))
        visited[order[-1]] = True
    return order


def greedy_both_ends(weights):
    """Extension of WOSS that may grow the path from either end.

    Same O(n²) cost; never worse than extending from one end only for
    the *next* step, though neither heuristic dominates globally.
    """
    weights = _check_weights(weights)
    n = weights.shape[0]
    if n == 1:
        return [0]
    masked = weights.astype(float).copy()
    np.fill_diagonal(masked, np.inf)
    start = int(np.argmin(masked))
    w1, w2 = divmod(start, n)
    order = [int(w1), int(w2)]
    visited = np.zeros(n, dtype=bool)
    visited[w1] = visited[w2] = True
    while len(order) < n:
        head_row = np.where(visited, np.inf, masked[order[0]])
        tail_row = np.where(visited, np.inf, masked[order[-1]])
        h, t = int(np.argmin(head_row)), int(np.argmin(tail_row))
        if head_row[h] < tail_row[t]:
            order.insert(0, h)
            visited[h] = True
        else:
            order.append(t)
            visited[t] = True
    return order


def exact_ordering(weights, max_n=14):
    """Optimal ordering by Held–Karp dynamic programming (open path).

    O(n²·2ⁿ); refuses channels larger than ``max_n``.  Used to certify
    heuristic quality in the ablation benches and tests.
    """
    weights = _check_weights(weights)
    n = weights.shape[0]
    if n > max_n:
        raise GeometryError(f"exact ordering limited to {max_n} wires, got {n}")
    if n == 1:
        return [0]
    full = (1 << n) - 1
    # best[mask][last] = (cost, predecessor)
    best = [dict() for _ in range(1 << n)]
    for v in range(n):
        best[1 << v][v] = (0.0, -1)
    for mask in range(1 << n):
        for last, (cost, _) in list(best[mask].items()):
            for nxt in range(n):
                bit = 1 << nxt
                if mask & bit:
                    continue
                cand = cost + weights[last, nxt]
                entry = best[mask | bit].get(nxt)
                if entry is None or cand < entry[0]:
                    best[mask | bit][nxt] = (cand, last)
    last = min(best[full], key=lambda v: best[full][v][0])
    order = [last]
    mask = full
    while best[mask][order[-1]][1] != -1:
        prev = best[mask][order[-1]][1]
        mask ^= 1 << order[-1]
        order.append(prev)
    return order[::-1]


def brute_force_ordering(weights, max_n=9):
    """Optimal ordering by enumeration — an independent oracle for tests."""
    weights = _check_weights(weights)
    n = weights.shape[0]
    if n > max_n:
        raise GeometryError(f"brute force limited to {max_n} wires, got {n}")
    best_order, best_cost = None, np.inf
    for perm in itertools.permutations(range(n)):
        if perm[0] > perm[-1]:
            continue  # a path and its reverse have equal cost
        cost = ordering_cost(perm, weights)
        if cost < best_cost:
            best_order, best_cost = list(perm), cost
    return best_order


def random_ordering(n, seed=0):
    """Uniformly random permutation (ablation baseline)."""
    if n < 1:
        raise GeometryError("need at least one wire")
    rng = make_rng(seed)
    return rng.permutation(n).tolist()


def two_opt_improve(order, weights, max_rounds=50):
    """2-opt local search: reverse segments while the cost drops.

    Standard TSP improvement applied to the open path; used to measure
    how far WOSS is from a local optimum.
    """
    weights = _check_weights(weights)
    order = list(order)
    n = len(order)
    if sorted(order) != list(range(weights.shape[0])):
        raise GeometryError("order must be a permutation of 0..n-1")
    for _ in range(max_rounds):
        improved = False
        for a in range(n - 1):
            for b in range(a + 1, n):
                # Reversing order[a..b] changes only the two boundary edges.
                before = 0.0
                after = 0.0
                if a > 0:
                    before += weights[order[a - 1], order[a]]
                    after += weights[order[a - 1], order[b]]
                if b < n - 1:
                    before += weights[order[b], order[b + 1]]
                    after += weights[order[a], order[b + 1]]
                if after < before - 1e-12:
                    order[a:b + 1] = reversed(order[a:b + 1])
                    improved = True
        if not improved:
            break
    return order
