"""JSON serialization of circuits and sizing results.

Reproducibility plumbing: persist a circuit (with its technology) and a
sizing outcome to plain JSON, reload them bit-exactly, and diff runs
across machines.  The schema is versioned; loading rejects unknown
versions rather than guessing.
"""

import dataclasses
import json
import pathlib

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.components import Node, NodeKind
from repro.tech import Technology
from repro.timing.metrics import CircuitMetrics
from repro.utils.errors import ReproError

SCHEMA_VERSION = 1


# -- circuits -----------------------------------------------------------------------


def circuit_to_dict(circuit):
    """Plain-dict form of a circuit (nodes, edges, technology)."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "circuit",
        "name": circuit.name,
        "technology": dataclasses.asdict(circuit.tech),
        "nodes": [
            {
                "index": n.index,
                "kind": n.kind.name,
                "name": n.name,
                "r_hat": n.r_hat,
                "c_hat": n.c_hat,
                "fringe": n.fringe,
                "alpha": n.alpha,
                "lower": n.lower,
                "upper": n.upper,
                "function": n.function,
                "length": n.length,
                "load_cap": n.load_cap,
            }
            for n in circuit.nodes
        ],
        "edges": [list(edge) for edge in circuit.edges],
    }


def circuit_from_dict(data):
    """Rebuild (and re-validate) a circuit from :func:`circuit_to_dict`."""
    _check_header(data, "circuit")
    tech = Technology(**data["technology"])
    nodes = [
        Node(
            index=entry["index"],
            kind=NodeKind[entry["kind"]],
            name=entry["name"],
            r_hat=entry["r_hat"],
            c_hat=entry["c_hat"],
            fringe=entry["fringe"],
            alpha=entry["alpha"],
            lower=entry["lower"],
            upper=entry["upper"],
            function=entry["function"],
            length=entry["length"],
            load_cap=entry["load_cap"],
        )
        for entry in data["nodes"]
    ]
    edges = [tuple(edge) for edge in data["edges"]]
    return Circuit(nodes, edges, tech, name=data["name"])


def save_circuit(circuit, path):
    """Write the circuit as JSON; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(circuit_to_dict(circuit), indent=1))
    return path


def load_circuit(path):
    """Load a circuit saved by :func:`save_circuit`."""
    return circuit_from_dict(json.loads(pathlib.Path(path).read_text()))


# -- sizing results -----------------------------------------------------------------


def sizing_result_to_dict(result, include_history=False):
    """Plain-dict form of a :class:`SizingResult` (sizes + metrics)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "sizing_result",
        "converged": bool(result.converged),
        "feasible": bool(result.feasible),
        "iterations": int(result.iterations),
        "duality_gap": float(result.duality_gap),
        "dual_value": float(result.dual_value),
        "runtime_s": float(result.runtime_s),
        "memory_bytes": int(result.memory_bytes),
        "sizes": np.asarray(result.x, dtype=float).tolist(),
        "metrics": _metrics_dict(result.metrics),
        "initial_metrics": _metrics_dict(result.initial_metrics),
        "problem": {
            "delay_bound_ps": float(result.problem.delay_bound_ps),
            "noise_bound_ff": float(result.problem.noise_bound_ff),
            "power_cap_bound_ff": float(result.problem.power_cap_bound_ff),
        },
    }
    if include_history:
        payload["history"] = [dataclasses.asdict(r) for r in result.history]
    return payload


def save_sizing_result(result, path, include_history=False):
    path = pathlib.Path(path)
    path.write_text(json.dumps(
        sizing_result_to_dict(result, include_history=include_history), indent=1))
    return path


def load_sizing_summary(path):
    """Load the dict saved by :func:`save_sizing_result` (validated)."""
    data = json.loads(pathlib.Path(path).read_text())
    _check_header(data, "sizing_result")
    data["sizes"] = np.asarray(data["sizes"], dtype=float)
    return data


def metrics_to_dict(metrics):
    """Plain-dict form of a :class:`~repro.timing.metrics.CircuitMetrics`."""
    return {
        "noise_pf": float(metrics.noise_pf),
        "delay_ps": float(metrics.delay_ps),
        "power_mw": float(metrics.power_mw),
        "area_um2": float(metrics.area_um2),
        "total_cap_ff": float(metrics.total_cap_ff),
    }


def metrics_from_dict(data):
    """Rebuild a :class:`CircuitMetrics` from :func:`metrics_to_dict`."""
    return CircuitMetrics(**{key: float(data[key]) for key in (
        "noise_pf", "delay_ps", "power_mw", "area_um2", "total_cap_ff")})


_metrics_dict = metrics_to_dict


def _check_header(data, expected_kind):
    if not isinstance(data, dict):
        raise ReproError("not a repro JSON document")
    if data.get("schema") != SCHEMA_VERSION:
        raise ReproError(
            f"unsupported schema version {data.get('schema')!r} "
            f"(this library writes {SCHEMA_VERSION})")
    if data.get("kind") != expected_kind:
        raise ReproError(
            f"expected a {expected_kind!r} document, got {data.get('kind')!r}")
