"""Posynomial machinery and the independent reference solver.

The paper's optimality claim (Theorems 6–7) rests on problem ``PP`` being
posynomial, hence convex after the log-variable transform.  This package
provides:

* :mod:`~repro.opt.posynomial` — explicit monomial/posynomial objects,
  used to *prove structurally* that the objective and constraints of a
  given circuit are posynomials (tests assert it; Eq. 3's purpose),
* :mod:`~repro.opt.reference` — an independent NLP solution of ``PP``
  via SciPy (explicit arrival-time variables, SLSQP/trust-constr),
  certifying OGWS's global optimum on small circuits.
"""

from repro.opt.posynomial import Monomial, Posynomial, build_problem_posynomials
from repro.opt.reference import ReferenceSolution, solve_reference

__all__ = [
    "Monomial",
    "Posynomial",
    "build_problem_posynomials",
    "ReferenceSolution",
    "solve_reference",
]
