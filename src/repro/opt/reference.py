"""Independent NLP solution of problem ``PP`` (optimality cross-check).

Solves the exact program OGWS solves — same Elmore engine, same coupling
set, same bounds — but through SciPy's general-purpose constrained
optimizers with explicit arrival-time variables:

    minimize    Σ α_i·x_i
    subject to  a_i ≥ a_j + D_i(x)   for every edge (j, i) into component i
                a_j ≤ A0             for every primary-output wire j
                Σ c_i(x) ≤ P',  X(x) ≤ X_B,  L ≤ x ≤ U

Because ``PP`` is convex in log-variables, any KKT point SciPy finds is
the global optimum, so agreement with OGWS (a few % at the paper's 1%
precision) certifies Theorem 7 empirically.  Cost is O(vars²) per
iteration with finite-difference gradients — small circuits only.
"""

import dataclasses

import numpy as np
from scipy import optimize

from repro.utils.errors import ValidationError
from repro.utils.units import FF_PER_PF


@dataclasses.dataclass(frozen=True)
class ReferenceSolution:
    """Outcome of the SciPy reference solve."""

    x: np.ndarray          # full-length size vector (0 on non-sizable)
    arrival: np.ndarray    # arrival-time variables at the solution
    area_um2: float
    success: bool
    message: str
    n_variables: int


def solve_reference(engine, problem, x0=None, max_components=160,
                    maxiter=400, ftol=1e-10):
    """Solve ``PP`` with SLSQP.  Returns a :class:`ReferenceSolution`.

    ``x0`` seeds the solver (default: geometric mean of the bounds).
    Refuses circuits above ``max_components`` — finite-difference SLSQP
    scales quadratically and this is a certification tool, not a sizer.
    """
    cc = engine.compiled
    if cc.num_components > max_components:
        raise ValidationError(
            f"reference solver limited to {max_components} components "
            f"(got {cc.num_components})")

    sizable = np.flatnonzero(cc.is_sizable)
    n_x = len(sizable)
    # Arrival variables for every component node (drivers..components).
    arrival_nodes = np.flatnonzero(cc.is_sizable | cc.is_driver)
    n_a = len(arrival_nodes)
    a_pos = {int(node): n_x + k for k, node in enumerate(arrival_nodes)}

    lower, upper = cc.lower[sizable], cc.upper[sizable]

    def unpack(z):
        x = np.zeros(cc.num_nodes)
        x[sizable] = np.clip(z[:n_x], lower, upper)
        return x

    def objective(z):
        return float(np.sum(cc.alpha[sizable] * z[:n_x]))

    def objective_grad(z):
        g = np.zeros_like(z)
        g[:n_x] = cc.alpha[sizable]
        return g

    def delay_vector(z):
        return engine.delays(unpack(z))

    def arrival_constraints(z):
        """a_i − a_j − D_i ≥ 0 per edge into a component; a_src = 0."""
        delays = delay_vector(z)
        out = []
        for e in range(cc.num_edges):
            j, i = int(cc.edge_src[e]), int(cc.edge_dst[e])
            if i == cc.sink:
                continue
            a_j = 0.0 if j == cc.source else z[a_pos[j]]
            out.append(z[a_pos[i]] - a_j - delays[i])
        return np.array(out)

    def output_constraints(z):
        """A0 − a_j ≥ 0 for every primary-output wire."""
        po = [int(cc.edge_src[e]) for e in cc.sink_in_edges]
        return np.array([problem.delay_bound_ps - z[a_pos[j]] for j in po])

    def power_constraint(z):
        x = unpack(z)
        return np.array([
            problem.power_cap_bound_ff - float(np.sum(cc.self_capacitance(x)))
        ])

    def noise_constraint(z):
        x = unpack(z)
        return np.array([problem.noise_bound_ff - engine.coupling.total(x)])

    x_start = np.sqrt(lower * upper) if x0 is None else np.asarray(x0)[sizable]
    z0 = np.concatenate([x_start, np.zeros(n_a)])
    # Seed arrivals consistently with the initial sizes.
    d0 = delay_vector(z0)
    a0 = engine.arrival_times(d0)
    for node, pos in a_pos.items():
        z0[pos] = a0[node] * 1.05 + 1.0

    bounds = [(lo, hi) for lo, hi in zip(lower, upper)]
    bounds += [(0.0, None)] * n_a

    constraints = [
        {"type": "ineq", "fun": arrival_constraints},
        {"type": "ineq", "fun": output_constraints},
        {"type": "ineq", "fun": power_constraint},
        {"type": "ineq", "fun": noise_constraint},
    ]
    result = optimize.minimize(
        objective, z0, jac=objective_grad, bounds=bounds, constraints=constraints,
        method="SLSQP", options={"maxiter": maxiter, "ftol": ftol},
    )
    x_full = unpack(result.x)
    arrival = np.zeros(cc.num_nodes)
    for node, pos in a_pos.items():
        arrival[node] = result.x[pos]
    return ReferenceSolution(
        x=x_full,
        arrival=arrival,
        area_um2=objective(result.x),
        success=bool(result.success),
        message=str(result.message),
        n_variables=n_x + n_a,
    )


def compare_with_reference(engine, problem, sizing_result, **kwargs):
    """Relative area difference OGWS vs SciPy: (ours − ref)/ref.

    Positive values mean the reference found a smaller area.  Also
    returns the reference solution for inspection.
    """
    ref = solve_reference(engine, problem, **kwargs)
    ours = sizing_result.metrics.area_um2
    rel = (ours - ref.area_um2) / max(ref.area_um2, 1e-30)
    return rel, ref


def reference_metrics(engine, solution):
    """Table 1-style metrics at a reference solution point."""
    from repro.timing.metrics import evaluate_metrics

    return evaluate_metrics(engine, solution.x)
