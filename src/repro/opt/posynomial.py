"""Monomials and posynomials (paper Sec. 3.1 / 4.1).

A *monomial* is ``c · Π x_vᵃᵛ`` with ``c > 0`` and real exponents; a
*posynomial* is a finite sum of monomials.  Posynomials become convex
under ``x = exp(y)`` (geometric-programming folklore), which is what
gives problem ``PP`` its unique global optimum.

These objects exist to make the paper's structural claims *checkable*:
:func:`build_problem_posynomials` assembles the actual objective and
constraint expressions of a circuit and the tests verify posynomiality
(all coefficients positive) and numerical log-convexity.
"""

import dataclasses

import numpy as np

from repro.timing.elmore import CouplingDelayMode
from repro.utils.errors import ValidationError
from repro.utils.units import OHM_FF_TO_PS


@dataclasses.dataclass(frozen=True)
class Monomial:
    """``coefficient · Π x_v^exponents[v]`` with positive coefficient."""

    coefficient: float
    exponents: tuple  # sorted tuple of (variable, power)

    def __post_init__(self):
        if self.coefficient <= 0:
            raise ValidationError("monomial coefficients must be positive")

    @classmethod
    def make(cls, coefficient, exponents=None):
        items = tuple(sorted((exponents or {}).items()))
        items = tuple((v, p) for v, p in items if p != 0)
        return cls(float(coefficient), items)

    def evaluate(self, x):
        """Evaluate at ``x`` (mapping variable → positive value)."""
        value = self.coefficient
        for var, power in self.exponents:
            value *= x[var] ** power
        return value

    def variables(self):
        return {var for var, _ in self.exponents}


class Posynomial:
    """A sum of monomials; closed under addition and monomial scaling."""

    def __init__(self, monomials=()):
        self.monomials = list(monomials)

    @classmethod
    def constant(cls, value):
        return cls([Monomial.make(value)]) if value > 0 else cls([])

    def add(self, other):
        if isinstance(other, Monomial):
            return Posynomial(self.monomials + [other])
        return Posynomial(self.monomials + list(other.monomials))

    def scale(self, factor):
        """Multiply every monomial by a positive constant."""
        if factor <= 0:
            raise ValidationError("posynomial scale factor must be positive")
        return Posynomial([
            Monomial(m.coefficient * factor, m.exponents) for m in self.monomials
        ])

    def evaluate(self, x):
        return sum(m.evaluate(x) for m in self.monomials)

    def evaluate_log(self, y):
        """Evaluate at ``x = exp(y)`` — the convex form (log-sum-exp-like)."""
        return self.evaluate({v: float(np.exp(val)) for v, val in y.items()})

    def variables(self):
        out = set()
        for m in self.monomials:
            out |= m.variables()
        return out

    def is_posynomial(self):
        """True by construction; re-validates coefficients defensively."""
        return all(m.coefficient > 0 for m in self.monomials)

    def __len__(self):
        return len(self.monomials)

    def __repr__(self):
        return f"Posynomial(terms={len(self.monomials)})"


def build_problem_posynomials(circuit, coupling, mode=CouplingDelayMode.OWN,
                              max_components=600):
    """Assemble problem ``PP``'s expressions as explicit posynomials.

    Returns a dict with:

    * ``"area"`` — the objective ``Σ α_i·x_i``,
    * ``"power"`` — ``Σ c_i(x)``,
    * ``"crosstalk"`` — ``Σ w_ij·c_ij(x)`` at the coupling set's Taylor
      order (k = 2 produces exactly Eq. 3's linear form),
    * ``"delays"`` — mapping node index → posynomial ``D_i(x)``.

    Variables are named ``x<i>`` by node index.  Intended for structural
    verification on small/medium circuits (``max_components`` guards
    accidental use on huge ones: term counts grow with stage sizes).
    """
    if circuit.num_components > max_components:
        raise ValidationError(
            f"posynomial assembly limited to {max_components} components")
    mode = CouplingDelayMode(mode)

    def var(i):
        return f"x{i}"

    area = Posynomial([
        Monomial.make(n.alpha, {var(n.index): 1})
        for n in circuit.components()
    ])

    power = Posynomial()
    for n in circuit.components():
        power = power.add(Monomial.make(n.c_hat, {var(n.index): 1}))
        if n.fringe > 0:
            power = power.add(Monomial.make(n.fringe))

    crosstalk = Posynomial()
    u_vars = {}
    for p in range(coupling.num_pairs):
        i, j = int(coupling.pair_i[p]), int(coupling.pair_j[p])
        d = float(coupling.distance[p])
        ctilde = float(coupling.ctilde[p])
        # ~c · Σ_{n<k} u^n with u = (x_i + x_j)/(2d): expand the multinomial.
        for n_pow in range(coupling.order):
            for a in range(n_pow + 1):
                b = n_pow - a
                coeff = ctilde * _binomial(n_pow, a) / (2.0 * d) ** n_pow
                exps = {}
                if a:
                    exps[var(i)] = a
                if b:
                    exps[var(j)] = b
                crosstalk = crosstalk.add(Monomial.make(coeff, exps))
        u_vars[(i, j)] = d

    delays = {}
    cpl_lookup = _pair_lookup(coupling)
    for n in circuit.components():
        i = n.index
        terms = Posynomial()
        r_coeff = n.r_hat * OHM_FF_TO_PS
        driver = n.is_driver
        # Capacitance contributions of downstream(i), each divided by x_i
        # (or a constant for drivers).
        for k in sorted(circuit.downstream(i)):
            node = circuit.node(k)
            contributions = []
            if node.is_gate and k != i:
                contributions.append((node.c_hat, {var(k): 1}))
            elif node.is_wire:
                half = 0.5 if k == i else 1.0
                contributions.append((half * node.c_hat, {var(k): 1}))
                if node.fringe > 0:
                    contributions.append((half * node.fringe, {}))
                include_cpl = (mode is CouplingDelayMode.OWN and k == i) or \
                    mode is CouplingDelayMode.PROPAGATED
                if include_cpl:
                    for (ci, cj, ctilde, d, order) in cpl_lookup.get(k, ()):  # noqa: B007
                        for n_pow in range(order):
                            for a in range(n_pow + 1):
                                b = n_pow - a
                                coeff = ctilde * _binomial(n_pow, a) / (2.0 * d) ** n_pow
                                exps = {}
                                if a:
                                    exps[var(ci)] = exps.get(var(ci), 0) + a
                                if b:
                                    exps[var(cj)] = exps.get(var(cj), 0) + b
                                contributions.append((coeff, exps))
                if node.load_cap > 0:
                    contributions.append((node.load_cap, {}))
            for coeff, exps in contributions:
                exps = dict(exps)
                if not driver:
                    exps[var(i)] = exps.get(var(i), 0) - 1
                terms = terms.add(Monomial.make(coeff * r_coeff, exps))
        delays[i] = terms

    return {"area": area, "power": power, "crosstalk": crosstalk, "delays": delays}


def _binomial(n, k):
    from math import comb

    return comb(n, k)


def _pair_lookup(coupling):
    """node → list of (i, j, weighted ~c, d, order) pairs touching it."""
    table = {}
    for p in range(coupling.num_pairs):
        i, j = int(coupling.pair_i[p]), int(coupling.pair_j[p])
        entry = (i, j, float(coupling.ctilde[p]), float(coupling.distance[p]),
                 coupling.order)
        table.setdefault(i, []).append(entry)
        table.setdefault(j, []).append(entry)
    return table
