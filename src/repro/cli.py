"""Command-line interface.

``python -m repro <command>``:

* ``info <circuit>``      — structure, depth, channels, initial metrics
* ``size <circuit>``      — run the two-stage flow, print the result
* ``sweep <circuits...>`` — run circuits × knob axes, parallel + cached
* ``queue <submit|work|status|watch|gather|merge|retry-failed>`` — the
  sharded sweep service: submit a sweep to a durable on-disk queue
  (sharded by count or by estimated solve cost), drain it with any
  number of worker processes (work-stealing via heartbeat leases,
  retry with backoff, poison-shard quarantine, optional deterministic
  fault injection via ``--faults``) or serve queues long-lived with
  warm per-circuit sessions (``work --serve DIR``), watch live
  progress from the event stream, gather records byte-identical to a
  serial run, and re-arm quarantined shards
* ``serve-api``           — the sweep service's HTTP front door: a
  multi-tenant asyncio API (submit/status/SSE events/records/retry)
  plus an HTML dashboard rendered from the event stream alone; pair
  with ``queue work --serve`` workers draining the same root
* ``cache <stats|prune|clear>`` — inspect / LRU-evict a result cache
* ``table1 [names...]``   — reproduce Table 1 rows next to the paper's
* ``suite``               — list the embedded ISCAS85-like suite

``<circuit>`` is either a Table 1 name (``c432``) or a path to an
ISCAS85-format ``.bench`` file.  All stochastic stages are seeded, so
repeated invocations print identical numbers (timing aside).
"""

import argparse
import pathlib
import sys
import time

import numpy as np

from repro.analysis.report import format_paper_table1, format_sweep, format_table1
from repro.circuit import ISCAS85_SPECS, iscas85_circuit, load_bench
from repro.core import NoiseAwareSizingFlow, check_kkt
from repro.core.flow import ORDERING_NAMES
from repro.geometry import ChannelLayout
from repro.noise import MillerMode
from repro.runtime import (
    BatchRunner,
    CircuitRef,
    FlowConfig,
    ResultCache,
    Scenario,
    SweepSpec,
)
from repro.timing import CouplingDelayMode, ElmoreEngine, evaluate_metrics
from repro.utils.errors import ReproError
from repro.utils.tables import format_table


def _parse_partitions(value):
    """``--partitions`` values: ``auto`` (size-based, the default) or an int."""
    if value == "auto":
        return 0
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'auto' or an integer, got {value!r}")


def _add_partition_args(parser):
    """The partitioned-solver routing knobs (``size``, ``sweep``, ``queue``)."""
    parser.add_argument(
        "--partitions", type=_parse_partitions, default=0, metavar="K",
        help="region count for the partitioned solver: 'auto' (default, "
             "size-based), 1 (always monolithic), or an explicit K >= 2")
    parser.add_argument(
        "--partition-threshold", type=int, default=20000, metavar="GATES",
        help="minimum gate count before partitioning engages; "
             "<= 0 disables it outright (default: 20000)")


def _add_axis_args(parser):
    """The sweep-defining arguments shared by ``sweep`` and ``queue submit``."""
    parser.add_argument("circuits", nargs="+",
                        help="Table 1 names, .bench paths, and/or random:N")
    parser.add_argument("--orderings", nargs="+", default=["woss"],
                        choices=list(ORDERING_NAMES), metavar="ORD")
    parser.add_argument("--delay-modes", nargs="+", default=["own"],
                        choices=[m.value for m in CouplingDelayMode],
                        metavar="MODE")
    parser.add_argument("--miller-modes", nargs="+", default=["similarity"],
                        choices=[m.value for m in MillerMode], metavar="MODE")
    parser.add_argument("--noise-fractions", nargs="+", type=float,
                        default=[0.1], metavar="F")
    parser.add_argument("--delay-slacks", nargs="+", type=float,
                        default=[1.1], metavar="S")
    parser.add_argument("--patterns", type=int, default=256)
    parser.add_argument("--max-iterations", type=int, default=200)
    parser.add_argument("--tolerance", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; per-scenario seeds derive from it")
    _add_partition_args(parser)


def _spec_from_args(args):
    """The :class:`SweepSpec` described by ``_add_axis_args`` values."""
    return SweepSpec(
        circuits=tuple(CircuitRef.from_spec(s, seed=args.seed)
                       for s in args.circuits),
        orderings=tuple(args.orderings),
        miller_modes=tuple(args.miller_modes),
        delay_modes=tuple(args.delay_modes),
        noise_fractions=tuple(args.noise_fractions),
        delay_slacks=tuple(args.delay_slacks),
        base=FlowConfig(n_patterns=args.patterns, seed=args.seed,
                        max_iterations=args.max_iterations,
                        tolerance=args.tolerance,
                        partitions=args.partitions,
                        partition_threshold=args.partition_threshold),
    )


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Noise-constrained gate/wire sizing by Lagrangian "
                    "relaxation (DAC 1999 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="describe a circuit")
    info.add_argument("circuit", help="Table 1 name (c432) or .bench path")

    size = sub.add_parser("size", help="run the two-stage sizing flow")
    size.add_argument("circuit",
                      help="Table 1 name (c432), .bench path, or random:N")
    size.add_argument("--patterns", type=int, default=256,
                      help="logic-simulation patterns for similarity")
    size.add_argument("--delay-slack", type=float, default=1.1,
                      help="A0 as a multiple of the initial delay")
    size.add_argument("--noise-fraction", type=float, default=0.1,
                      help="X_B as a fraction of the initial noise")
    size.add_argument("--power-fraction", type=float, default=0.2,
                      help="P' as a fraction of the initial capacitance")
    size.add_argument("--max-iterations", type=int, default=200)
    size.add_argument("--tolerance", type=float, default=0.01,
                      help="duality-gap stop (paper: 1%%)")
    size.add_argument("--ordering", default="woss", choices=list(ORDERING_NAMES))
    size.add_argument("--update", default="multiplicative",
                      choices=["multiplicative", "subgradient"])
    size.add_argument("--seed", type=int, default=0,
                      help="seed for similarity patterns / random circuits")
    _add_partition_args(size)
    size.add_argument("--kkt", action="store_true",
                      help="print the Theorem 6 KKT certificate")
    size.add_argument("--sizes", action="store_true",
                      help="print the final size of every component")

    sweep = sub.add_parser(
        "sweep", help="run circuits x knob axes in parallel with caching")
    _add_axis_args(sweep)
    sweep.add_argument("--jobs", default="1",
                       help="worker processes (1 = serial, auto = CPU count)")
    sweep.add_argument("--batch", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="group scenarios by circuit into compile-once "
                            "SolverSessions with lockstep batched solving "
                            "(default: on unless REPRO_NO_BATCH is set; "
                            "records are byte-identical either way)")
    sweep.add_argument("--cache-dir", default=".repro_cache",
                       help="result cache directory (default: .repro_cache)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="always recompute; do not read or write the cache")
    sweep.add_argument("--verify-cache", action="store_true",
                       help="re-fingerprint circuits before serving cache "
                            "hits (guards against .bench files edited in "
                            "place, at the cost of building each circuit)")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress the per-scenario stream, print the table only")

    queue = sub.add_parser(
        "queue", help="sharded sweep service: durable queue + workers")
    queue_sub = queue.add_subparsers(dest="queue_command", required=True)
    q_submit = queue_sub.add_parser(
        "submit", help="expand a sweep into claimable circuit-grouped shards")
    _add_axis_args(q_submit)
    q_submit.add_argument("--shard-mode", choices=["count", "cost"],
                          default="count",
                          help="how each circuit's scenario group splits "
                               "into shards: 'count' caps scenarios per "
                               "shard (--shard-size); 'cost' packs shards "
                               "to an estimated-solve-cost budget "
                               "(--cost-budget), so one large-circuit "
                               "shard doesn't straggle behind many small "
                               "ones (default: count)")
    q_submit.add_argument("--shard-size", type=int, default=None, metavar="N",
                          help="max scenarios per shard — the count-mode "
                               "splitter (default: one shard per circuit "
                               "group; smaller shards let more workers "
                               "share one circuit's sweep).  In "
                               "--shard-mode cost it is an extra cap on "
                               "top of the cost budget")
    q_submit.add_argument("--cost-budget", type=float, default=None,
                          metavar="C",
                          help="cost mode: max estimated cost per shard "
                               "(default: the single most expensive "
                               "scenario's cost, so the largest circuit "
                               "shards alone while cheap circuits pack "
                               "many scenarios per shard)")
    q_submit.add_argument("--cost-bench", default=None, metavar="PATH",
                          help="calibrate the cost model from a "
                               "BENCH_perf.json trajectory (cost mode; "
                               "default: uncalibrated circuit-size "
                               "estimates)")
    q_submit.add_argument("--label", default="",
                          help="free-form tag recorded in the manifest")
    q_submit.add_argument("--lease-ttl", type=float, default=None,
                          metavar="S",
                          help="lease TTL recorded in the manifest: "
                               "workers steal a peer's shard after S "
                               "seconds without a heartbeat (default 60; "
                               "per-worker --lease-ttl overrides)")
    q_submit.add_argument("--lease-grace", type=float, default=None,
                          metavar="S",
                          help="extra seconds on top of the TTL before a "
                               "lease counts as expired — a cushion for "
                               "clock/mtime skew between hosts sharing "
                               "the queue (default 0)")
    q_work = queue_sub.add_parser(
        "work", help="claim and solve shards until the queue is drained")
    q_work.add_argument("--serve", nargs="+", default=None, metavar="DIR",
                        help="long-lived mode (instead of --queue-dir): "
                             "drain every submitted queue under these "
                             "directories, adopting sweeps submitted while "
                             "running; workers keep warm per-circuit "
                             "sessions across sweeps and exit on "
                             "<DIR>/STOP or --max-idle")
    q_work.add_argument("--jobs", default="1",
                        help="worker processes (auto = CPU count)")
    q_work.add_argument("--max-shards", type=int, default=None, metavar="N",
                        help="stop each worker after N shards")
    q_work.add_argument("--lease-ttl", "--lease", type=float, default=None,
                        metavar="S", dest="lease_ttl",
                        help="steal a peer's shard after S seconds without "
                             "a heartbeat (default: the queue manifest's "
                             "policy from submit --lease-ttl, else 60)")
    q_work.add_argument("--lease-grace", type=float, default=None,
                        metavar="S",
                        help="extra seconds past the TTL before stealing "
                             "(default: the queue manifest's policy)")
    q_work.add_argument("--max-attempts", type=int, default=3, metavar="N",
                        help="claims a shard may consume before a failure "
                             "quarantines it to failed/ instead of "
                             "releasing it for retry (default 3)")
    q_work.add_argument("--faults", default=None, metavar="SPEC",
                        help="deterministic fault injection for chaos "
                             "testing, e.g. "
                             "'seed=7,crash=0.2,io-persist=0.3,torn=0.3' "
                             "(sites: crash, crash-post-persist, stall, "
                             "torn, io-claim, io-persist, io-append, "
                             "poison; also via REPRO_FAULTS)")
    q_work.add_argument("--restart-budget", type=int, default=0, metavar="N",
                        help="supervise worker processes: respawn up to N "
                             "abnormal deaths (crashes) across the drain "
                             "instead of failing it (default 0)")
    q_work.add_argument("--max-idle", type=float, default=None, metavar="S",
                        help="exit after S consecutive seconds without "
                             "claimable work (serve mode's exit valve; "
                             "default: serve until <DIR>/STOP)")
    q_work.add_argument("--sessions", type=int, default=4, metavar="N",
                        help="warm SolverSession LRU capacity per worker "
                             "(default 4)")
    q_work.add_argument("--no-wait", action="store_true",
                        help="exit when nothing is claimable instead of "
                             "waiting for peers' shards to finish")
    q_work.add_argument("--worker-id", default=None,
                        help="identity stamped into leases and events")
    q_status = queue_sub.add_parser(
        "status", help="shard and record progress, estimated vs actual cost")
    q_watch = queue_sub.add_parser(
        "watch", help="follow the event stream, live table at the end")
    q_watch.add_argument("--timeout", type=float, default=None, metavar="S",
                         help="give up after S seconds without a new event "
                              "(default: wait until the sweep completes)")
    q_watch.add_argument("--no-follow", action="store_true",
                         help="render what has happened so far and exit")
    q_watch.add_argument("--quiet", action="store_true",
                         help="suppress the per-event stream, table only")
    q_gather = queue_sub.add_parser(
        "gather", help="reassemble records in scenario order (serial-identical)")
    q_gather.add_argument("--partial", action="store_true",
                          help="return what exists instead of failing on an "
                               "incomplete queue")
    q_gather.add_argument("--verify-serial", action="store_true",
                          help="re-run the sweep serially in-process and "
                               "fail unless the gathered records are "
                               "byte-identical")
    q_gather.add_argument("--quiet", action="store_true",
                          help="suppress the sweep table, verdict only")
    q_merge = queue_sub.add_parser(
        "merge", help="union other queues'/caches' results into this queue")
    q_merge.add_argument("sources", nargs="+",
                         help="queue directories or bare result-cache "
                              "directories to copy records from")
    q_retry = queue_sub.add_parser(
        "retry-failed",
        help="re-arm quarantined shards (failed/ -> pending/, fresh "
             "attempt budget)")
    for sub_parser in (q_submit, q_status, q_watch, q_gather, q_merge,
                       q_retry):
        sub_parser.add_argument("--queue-dir", required=True,
                                help="queue directory")
    # `work` alone may take --serve instead of a queue directory.
    q_work.add_argument("--queue-dir", default=None, help="queue directory")

    serve_api = sub.add_parser(
        "serve-api",
        help="serve the sweep HTTP API + dashboard over a service root")
    serve_api.add_argument("--root", required=True,
                           help="service root directory (one queue "
                                "directory per accepted sweep)")
    serve_api.add_argument("--host", default="127.0.0.1")
    serve_api.add_argument("--port", type=int, default=8080,
                           help="TCP port (0 picks an ephemeral one; "
                                "default: 8080)")
    serve_api.add_argument("--tenants", default=None, metavar="JSON",
                           help="tenant config file: {name: {max_active, "
                                "priority}}; a 'default' entry covers "
                                "unknown tenants")
    serve_api.add_argument("--max-idle", type=float, default=None,
                           metavar="S",
                           help="exit after S seconds with no request "
                                "(default: serve forever)")

    cache = sub.add_parser("cache", help="inspect and maintain a result cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry count, bytes, and hit/miss counters")
    cache_prune = cache_sub.add_parser(
        "prune", help="evict least-recently-used entries down to a size cap")
    cache_prune.add_argument("--max-bytes", type=int, required=True,
                             help="target total size of cache entries")
    cache_clear = cache_sub.add_parser("clear", help="drop every entry")
    for sub_parser in (cache_stats, cache_prune, cache_clear):
        sub_parser.add_argument("--cache-dir", default=".repro_cache",
                                help="cache directory (default: .repro_cache)")

    table1 = sub.add_parser("table1", help="reproduce Table 1 rows")
    table1.add_argument("names", nargs="*",
                        help="circuit names (default: the four smallest)")
    table1.add_argument("--patterns", type=int, default=256)
    table1.add_argument("--max-iterations", type=int, default=200)

    sub.add_parser("suite", help="list the embedded benchmark suite")
    return parser


def _load_circuit(spec):
    if spec in ISCAS85_SPECS:
        return iscas85_circuit(spec)
    path = pathlib.Path(spec)
    if path.exists():
        return load_bench(path)
    raise ReproError(
        f"unknown circuit {spec!r}: not a Table 1 name "
        f"({', '.join(sorted(ISCAS85_SPECS))}) and no such file")


def cmd_info(args, out):
    circuit = _load_circuit(args.circuit)
    compiled = circuit.compile()
    layout = ChannelLayout.from_levels(circuit)
    engine = ElmoreEngine(compiled)
    metrics = evaluate_metrics(engine, compiled.default_sizes(np.inf))
    lengths = [w.length for w in circuit.wires()]
    rows = [
        ["gates", circuit.num_gates],
        ["wires", circuit.num_wires],
        ["primary inputs", circuit.num_drivers],
        ["primary outputs", len(circuit.primary_output_wires())],
        ["edges", len(circuit.edges)],
        ["topological levels", compiled.num_levels],
        ["routing channels", len(layout.channels)],
        ["largest channel", max((len(c) for c in layout.channels), default=0)],
        ["wire length (um, mean)", float(np.mean(lengths)) if lengths else 0.0],
        ["delay at x=U (ps, no coupling)", metrics.delay_ps],
        ["area at x=U (um2)", metrics.area_um2],
    ]
    out.write(format_table(["property", "value"], rows,
                           title=f"circuit {circuit.name!r}") + "\n")
    return 0


def cmd_size(args, out):
    from repro.core.partitioned import resolve_partitions
    from repro.core.session import SolverSession

    ref = CircuitRef.from_spec(args.circuit, seed=args.seed)
    session = SolverSession.for_ref(ref)
    circuit = session.circuit
    k = 1
    if args.partitions != 1 and args.partition_threshold > 0:
        k = resolve_partitions(args.partitions, args.partition_threshold,
                               session.num_gates)
    if k >= 2:
        config = FlowConfig(
            ordering=args.ordering, n_patterns=args.patterns, seed=args.seed,
            delay_slack=args.delay_slack, noise_fraction=args.noise_fraction,
            power_fraction=args.power_fraction,
            max_iterations=args.max_iterations, tolerance=args.tolerance,
            update=args.update, partitions=args.partitions,
            partition_threshold=args.partition_threshold)
        record = session.solve([Scenario(circuit=ref, config=config)])[0]
        out.write(f"partitioned solve: {record.diagnostics['partitions']} "
                  f"regions, {record.diagnostics['cut_edges']} cut edges\n")
        out.write(record.summary() + "\n")
        if args.kkt:
            out.write("KKT: not available on the partitioned path "
                      "(per-region multipliers are not a global certificate)\n")
        if args.sizes:
            rows = [[n.name, n.kind.name.lower(), record.sizes[n.index]]
                    for n in circuit.components()]
            out.write(format_table(["component", "kind", "size (um)"], rows,
                                   floatfmt="{:.3f}") + "\n")
        return 0 if record.feasible else 1
    flow = NoiseAwareSizingFlow(
        circuit,
        ordering=args.ordering,
        n_patterns=args.patterns,
        seed=args.seed,
        bound_factors=(args.delay_slack, args.noise_fraction,
                       args.power_fraction),
        optimizer_options={
            "max_iterations": args.max_iterations,
            "tolerance": args.tolerance,
            "update": args.update,
        },
    )
    outcome = flow.run(session=session)
    sizing = outcome.sizing
    out.write(f"problem: {outcome.problem}\n")
    out.write(f"stage 1: effective loading {outcome.ordering_cost_before:.3f} "
              f"-> {outcome.ordering_cost_after:.3f} "
              f"({outcome.ordering_improvement:.1%} lower)\n")
    out.write("stage 2: " + sizing.summary() + "\n")
    if args.kkt:
        report = check_kkt(outcome.engine, outcome.problem, sizing.x,
                           sizing.multipliers)
        out.write(
            f"KKT (Thm 6): flow={report.flow_conservation:.2e} "
            f"slack={report.complementary_slackness:.2e} "
            f"feas={report.primal_feasibility:.2e} "
            f"fixpoint={report.sizing_fixed_point:.2e}\n")
    if args.sizes:
        rows = [[n.name, n.kind.name.lower(), sizing.x[n.index]]
                for n in circuit.components()]
        out.write(format_table(["component", "kind", "size (um)"], rows,
                               floatfmt="{:.3f}") + "\n")
    return 0 if sizing.feasible else 1


def cmd_sweep(args, out):
    spec = _spec_from_args(args)
    cache = None if args.no_cache else ResultCache(
        args.cache_dir, verify_fingerprints=args.verify_cache)
    runner = BatchRunner(jobs=args.jobs, cache=cache,
                         batch=args.batch)
    out.write(f"sweep: {len(spec)} scenarios "
              f"({len(args.circuits)} circuits), jobs={runner.jobs}, "
              f"batch={'on' if runner.batch else 'off'}, "
              f"cache={'off' if cache is None else args.cache_dir}\n")

    progress = None if args.quiet else (
        lambda record: out.write(record.summary() + "\n"))
    started = time.perf_counter()
    records = runner.run(spec, progress=progress)
    elapsed = time.perf_counter() - started

    out.write("\n" + format_sweep(records) + "\n")
    rate = len(records) / elapsed if elapsed > 0 else float("inf")
    out.write(f"{runner.stats.summary()}, {elapsed:.2f}s "
              f"({rate:.1f} scenarios/s)\n")
    return 0 if all(r.feasible for r in records) else 1


def cmd_queue(args, out):
    from repro.analysis.live import watch_queue
    from repro.runtime.queue import CostModel, SweepQueue
    from repro.runtime.worker import run_workers

    if args.queue_command == "work" and \
            bool(args.serve) == bool(args.queue_dir):
        raise ReproError(
            "queue work needs exactly one of --queue-dir (drain one queue) "
            "or --serve DIR... (serve every queue under the directories)")
    if args.queue_command == "work" and args.serve and args.no_wait:
        raise ReproError(
            "--no-wait does not apply to --serve (a serving worker always "
            "keeps waiting for new sweeps; bound it with --max-idle or a "
            "STOP file)")
    queue = SweepQueue(args.queue_dir) if args.queue_dir else None
    if args.queue_command == "submit":
        cost_model = (CostModel.from_bench_file(args.cost_bench)
                      if args.cost_bench else None)
        shards = queue.submit(_spec_from_args(args),
                              shard_size=args.shard_size, label=args.label,
                              shard_mode=args.shard_mode,
                              cost_model=cost_model,
                              cost_budget=args.cost_budget,
                              lease_ttl=args.lease_ttl,
                              lease_grace=args.lease_grace)
        scenarios = sum(len(s) for s in shards)
        out.write(f"submitted {scenarios} scenarios as {len(shards)} "
                  f"shards ({args.shard_mode} mode) to {queue.root}\n")
        for shard in shards:
            # General format: estimates are component counts uncalibrated
            # (~1e2..1e4) but measured *seconds* when --cost-bench is on.
            out.write(f"  {shard.shard_id}: {len(shard)} scenarios, "
                      f"est cost {shard.est_cost:.4g}\n")
        out.write("drain with: repro queue work --queue-dir "
                  f"{args.queue_dir} --jobs auto\n")
        return 0
    if args.queue_command == "work":
        started = time.perf_counter()
        if args.serve:
            workers = run_workers([str(d) for d in args.serve], args.jobs,
                                  serve=True,
                                  worker_id=args.worker_id,
                                  lease_s=args.lease_ttl,
                                  lease_grace=args.lease_grace,
                                  max_shards=args.max_shards,
                                  max_attempts=args.max_attempts,
                                  faults=args.faults,
                                  restart_budget=args.restart_budget,
                                  idle_timeout_s=args.max_idle,
                                  session_capacity=args.sessions)
            out.write(f"{workers} serving worker(s) finished in "
                      f"{time.perf_counter() - started:.2f}s\n")
            return 0
        queue.manifest()    # fail fast on a typo'd --queue-dir
        workers = run_workers(args.queue_dir, args.jobs,
                              worker_id=args.worker_id,
                              lease_s=args.lease_ttl,
                              lease_grace=args.lease_grace,
                              max_shards=args.max_shards,
                              max_attempts=args.max_attempts,
                              faults=args.faults,
                              restart_budget=args.restart_budget,
                              wait=not args.no_wait,
                              idle_timeout_s=args.max_idle,
                              session_capacity=args.sessions)
        status = queue.status()
        out.write(f"{workers} worker(s) finished in "
                  f"{time.perf_counter() - started:.2f}s: "
                  f"{status.summary()}\n")
        return 0 if status.drained or args.max_shards or args.no_wait else 1
    if args.queue_command == "status":
        status = queue.status()
        out.write(format_table(["counter", "value"], status.counter_rows(),
                               title=f"queue {args.queue_dir}") + "\n")
        report = queue.shard_report()
        if report:
            shard_rows = [
                [row["shard"], row["state"], row["scenarios"],
                 row["attempts"],
                 f"{row['est_cost']:.4g}",
                 "-" if row["actual_s"] is None else f"{row['actual_s']:.3f}"]
                for row in report
            ]
            out.write("\n" + format_table(
                ["shard", "state", "scen", "att", "est cost", "actual s"],
                shard_rows, title="shards (estimated vs actual cost)") + "\n")
        if status.failed:
            out.write("re-arm quarantined shards with: repro queue "
                      f"retry-failed --queue-dir {args.queue_dir}\n")
        return 0
    if args.queue_command == "watch":
        records = watch_queue(queue, out, follow=not args.no_follow,
                              timeout_s=args.timeout, quiet=args.quiet)
        return 0 if len(records) == len(queue.scenarios()) else 1
    if args.queue_command == "gather":
        records = queue.gather(partial=args.partial)
        if not args.quiet:
            out.write(format_sweep(
                records, title=f"queue {args.queue_dir} (gathered)") + "\n")
        if args.verify_serial:
            serial = BatchRunner(jobs=1).run(queue.scenarios())
            if ([r.canonical_json() for r in records]
                    != [r.canonical_json() for r in serial]):
                out.write("verify-serial: MISMATCH — gathered records "
                          "diverge from a serial run\n")
                return 1
            out.write(f"verify-serial: {len(records)} records "
                      "byte-identical to a serial run\n")
        return 0 if all(r.feasible for r in records) else 1
    if args.queue_command == "retry-failed":
        queue.manifest()    # fail fast on a typo'd --queue-dir
        rearmed = queue.retry_failed()
        if rearmed:
            out.write(f"re-armed {len(rearmed)} quarantined shard(s): "
                      + ", ".join(rearmed) + "\n")
            out.write("drain with: repro queue work --queue-dir "
                      f"{args.queue_dir} --jobs auto\n")
        else:
            out.write("no quarantined shards to retry\n")
        return 0
    # merge
    queue.manifest()
    target = queue.cache()
    copied = skipped = 0
    for source in args.sources:
        source_dir = pathlib.Path(source)
        if (source_dir / "sweep.json").exists():
            source_dir = source_dir / "results"
        got, seen = target.merge(source_dir)
        copied += got
        skipped += seen
        out.write(f"{source}: {got} records copied, {seen} already "
                  "present\n")
    status = queue.status()
    out.write(f"merged {copied} records ({skipped} duplicates); "
              f"{status.summary()}\n")
    return 0


def cmd_cache(args, out):
    # Inspection/maintenance must not create directories as a side
    # effect (a typo'd --cache-dir should fail, not report emptiness).
    if not pathlib.Path(args.cache_dir).is_dir():
        raise ReproError(f"no such cache directory: {args.cache_dir}")
    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        rows = [
            ["entries", stats.entries],
            ["total bytes", stats.total_bytes],
            ["hits", stats.hits],
            ["misses", stats.misses],
            ["puts", stats.puts],
            ["evictions", stats.evictions],
        ]
        out.write(format_table(["counter", "value"], rows,
                               title=f"cache {args.cache_dir}") + "\n")
    elif args.cache_command == "prune":
        evicted, freed = cache.prune(args.max_bytes)
        stats = cache.stats()
        out.write(f"evicted {evicted} entries ({freed} bytes); "
                  f"{stats.entries} entries ({stats.total_bytes} bytes) "
                  f"remain\n")
    else:  # clear
        before = len(cache)
        cache.clear()
        out.write(f"cleared {before} entries from {args.cache_dir}\n")
    return 0


def cmd_table1(args, out):
    names = args.names or ["c432", "c880", "c499", "c1355"]
    unknown = [n for n in names if n not in ISCAS85_SPECS]
    if unknown:
        raise ReproError(f"unknown Table 1 circuits: {unknown}")
    results = {}
    for name in names:
        flow = NoiseAwareSizingFlow(
            iscas85_circuit(name), n_patterns=args.patterns,
            optimizer_options={"max_iterations": args.max_iterations})
        results[name] = flow.run().sizing
        out.write(f"{name}: {results[name].iterations} iterations, "
                  f"gap {results[name].duality_gap:.2%}\n")
    out.write(format_table1(results) + "\n\n")
    out.write(format_paper_table1() + "\n")
    return 0


def cmd_suite(args, out):
    rows = [[s.name, s.gates, s.wires, s.total, s.inputs, s.outputs, s.depth]
            for s in sorted(ISCAS85_SPECS.values(), key=lambda s: s.total)]
    out.write(format_table(
        ["name", "#G", "#W", "tot", "PI", "PO", "depth"], rows,
        title="embedded ISCAS85-like suite (Table 1 statistics)") + "\n")
    return 0


def cmd_serve_api(args, out):
    from repro.runtime.api import run_server

    return run_server(args.root, host=args.host, port=args.port,
                      tenants=args.tenants, max_idle_s=args.max_idle,
                      out=out)


_COMMANDS = {
    "info": cmd_info,
    "size": cmd_size,
    "sweep": cmd_sweep,
    "queue": cmd_queue,
    "serve-api": cmd_serve_api,
    "cache": cmd_cache,
    "table1": cmd_table1,
    "suite": cmd_suite,
}


def main(argv=None, out=None):
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as error:
        out.write(f"error: {error}\n")
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
