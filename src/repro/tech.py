"""Technology parameters.

A :class:`Technology` bundles every process- and environment-dependent
constant the flow needs: unit resistances/capacitances for gates and wires,
size bounds, supply voltage and clock frequency, and the channel geometry
used for coupling extraction.

:func:`Technology.dac99` returns the values quoted in Section 5 of the
paper:

* gate:  ``r̂ = 10 kΩ·µm``  (10 kΩ at unit 1 µm size), ``ĉ = 0.16 fF/µm``
* wire:  ``r̂ = 0.07 Ω/µm`` of length (at 1 µm width), ``ĉ = 0.024 fF/µm``
* size bounds 0.1 µm … 10 µm, V_dd = 3.3 V, f = 200 MHz

The paper prints the gate unit resistance with a garbled unit glyph
("10 ?Ω?µm"); 10 kΩ·µm is the standard value for the era's processes and
gives delays in the paper's reported range (≈0.8–4.9 ns for ISCAS85-sized
circuits), so that reading is used here and called out in DESIGN.md.
"""

import dataclasses

from repro.utils.errors import ValidationError


@dataclasses.dataclass(frozen=True)
class Technology:
    """Process constants shared by modeling, extraction, and optimization.

    All attributes use the library's unit conventions (Ω, fF, µm, V, Hz);
    see :mod:`repro.utils.units`.
    """

    #: Gate output resistance for a unit-size (1 µm) gate, in Ω.
    gate_unit_resistance: float = 10_000.0
    #: Gate input capacitance per µm of gate size, in fF/µm.
    gate_unit_capacitance: float = 0.16
    #: Wire sheet resistance per µm of length at 1 µm width, in Ω/µm.
    wire_unit_resistance: float = 0.07
    #: Wire area capacitance per µm length per µm width, in fF/µm².
    wire_unit_capacitance: float = 0.024
    #: Wire fringing capacitance per µm of length, in fF/µm (width-independent).
    wire_fringe_capacitance: float = 0.02
    #: Unit-length inter-wire fringing capacitance at 1 µm separation, fF.
    #: Chosen so ISCAS85-scale totals land in Table 1's few-pF range.
    coupling_unit_capacitance: float = 0.008
    #: Minimum allowed gate/wire size (width), µm.
    min_size: float = 0.1
    #: Maximum allowed gate/wire size (width), µm.
    max_size: float = 10.0
    #: Supply voltage, V.
    supply_voltage: float = 3.3
    #: Clock frequency, Hz.
    clock_frequency: float = 200e6
    #: Middle-to-middle distance between adjacent routing tracks, µm.
    #: Tight (≈ min_size scale) so that, as in Table 1, most of the
    #: initial coupling is size-dependent and sizing can cut noise ~10×
    #: (the x=L noise floor must sit below 10% of the x=U value);
    #: see DESIGN.md §3 (the Taylor form is used consistently as both the
    #: metric and the constraint, so u = (x_i+x_j)/2d > 1 at the fat
    #: initial sizing is well-defined even though the hyperbolic form
    #: would not be).
    track_pitch: float = 0.8
    #: Area per µm of gate size, µm²/µm (layout cell height proxy).
    gate_area_per_size: float = 10.0
    #: Default driver resistance for primary inputs, Ω.
    driver_resistance: float = 200.0
    #: Default load capacitance for primary outputs, fF.
    load_capacitance: float = 50.0

    def __post_init__(self):
        positive = {
            "gate_unit_resistance": self.gate_unit_resistance,
            "gate_unit_capacitance": self.gate_unit_capacitance,
            "wire_unit_resistance": self.wire_unit_resistance,
            "wire_unit_capacitance": self.wire_unit_capacitance,
            "coupling_unit_capacitance": self.coupling_unit_capacitance,
            "min_size": self.min_size,
            "max_size": self.max_size,
            "supply_voltage": self.supply_voltage,
            "clock_frequency": self.clock_frequency,
            "track_pitch": self.track_pitch,
            "gate_area_per_size": self.gate_area_per_size,
            "driver_resistance": self.driver_resistance,
            "load_capacitance": self.load_capacitance,
        }
        for name, value in positive.items():
            if value <= 0:
                raise ValidationError(f"Technology.{name} must be positive, got {value!r}")
        if self.wire_fringe_capacitance < 0:
            raise ValidationError("Technology.wire_fringe_capacitance must be non-negative")
        if self.min_size >= self.max_size:
            raise ValidationError(
                f"min_size ({self.min_size}) must be below max_size ({self.max_size})"
            )

    @classmethod
    def dac99(cls):
        """The paper's Section 5 experimental setup (see module docstring)."""
        return cls()

    def replace(self, **changes):
        """Return a copy with ``changes`` applied (frozen-dataclass helper)."""
        return dataclasses.replace(self, **changes)

    # -- derived model quantities -------------------------------------------------

    def gate_resistance(self, size_um):
        """Drive resistance of a gate of ``size_um`` (Ω): ``r̂ / x``."""
        return self.gate_unit_resistance / size_um

    def gate_capacitance(self, size_um):
        """Input capacitance of a gate of ``size_um`` (fF): ``ĉ · x``."""
        return self.gate_unit_capacitance * size_um

    def wire_resistance(self, length_um, width_um):
        """Resistance of a wire segment (Ω): ``r̂ · ℓ / x``."""
        return self.wire_unit_resistance * length_um / width_um

    def wire_capacitance(self, length_um, width_um):
        """Ground capacitance of a wire segment (fF): ``ĉ · ℓ · x + f · ℓ``."""
        return (
            self.wire_unit_capacitance * length_um * width_um
            + self.wire_fringe_capacitance * length_um
        )
