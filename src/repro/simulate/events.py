"""Event-driven unit-delay logic simulation.

Where :func:`~repro.simulate.levelized.simulate_levelized` records one
steady value per cycle, this simulator propagates individual transitions
through the circuit with a transport-delay model (gates delay by
``gate_delay``, wires by ``wire_delay``), so hazards/glitches appear in
the waveforms.  It exists because the paper's similarity integral is
defined over *time-domain* waveforms; comparing both similarity variants
is one of the ablations.

Complexity is O(activity · log activity) per pattern; use it for circuits
up to a few thousand nodes or for small pattern counts.
"""

import heapq

import numpy as np

from repro.circuit.components import NodeKind
from repro.simulate.levelized import simulate_levelized
from repro.simulate.logic import evaluate_function
from repro.simulate.waveforms import Waveform
from repro.utils.errors import SimulationError


class EventDrivenSimulator:
    """Transport-delay event simulation over a :class:`Circuit`.

    Parameters
    ----------
    circuit:
        The circuit to simulate.
    gate_delay, wire_delay:
        Propagation delays in abstract time units.  ``wire_delay`` may be
        0 (events at equal times are processed in insertion order).
    cycle_length:
        Time between pattern applications; defaults to a value safely
        above the deepest gate path so each cycle settles (2·levels+4).
    """

    def __init__(self, circuit, gate_delay=1.0, wire_delay=0.0, cycle_length=None):
        if gate_delay <= 0 or wire_delay < 0:
            raise SimulationError("need gate_delay > 0 and wire_delay >= 0")
        self.circuit = circuit
        self.gate_delay = float(gate_delay)
        self.wire_delay = float(wire_delay)
        if cycle_length is None:
            depth = circuit.compile().num_levels
            cycle_length = depth * (gate_delay + wire_delay) * 2 + 4 * gate_delay
        if cycle_length <= 0:
            raise SimulationError("cycle_length must be positive")
        self.cycle_length = float(cycle_length)

    def run(self, patterns):
        """Simulate all ``patterns`` and return ``{node_index: Waveform}``.

        Pattern ``p`` is applied at ``t = p · cycle_length``; the initial
        state is the settled response to pattern 0.  Waveform duration is
        ``n_patterns · cycle_length``.  Source and sink are omitted.
        """
        circuit = self.circuit
        patterns = np.asarray(patterns, dtype=bool)
        if patterns.ndim != 2 or patterns.shape[1] != circuit.num_drivers:
            raise SimulationError("patterns must be (n_patterns, n_inputs)")
        duration = patterns.shape[0] * self.cycle_length

        # Settle the circuit on pattern 0 (steady-state values at t = 0).
        current = simulate_levelized(circuit, patterns[:1])[:, 0].copy()
        transitions = {node.index: [] for node in circuit.nodes
                       if node.kind.is_component}
        initial = {idx: bool(current[idx]) for idx in transitions}

        # Driver events carry explicit values; everything downstream uses
        # *re-evaluation* events ("recompute node at time t from current
        # inputs").  Evaluating at pop time — rather than at schedule time
        # — keeps simultaneous input changes causal: the last evaluation
        # at any instant sees all of that instant's updates, so zero-width
        # glitch pairs collapse to the correct settled value.
        heap = []
        counter = 0
        for p in range(1, patterns.shape[0]):
            t_apply = p * self.cycle_length
            for d in range(circuit.num_drivers):
                heapq.heappush(heap, (t_apply, counter, d + 1, bool(patterns[p, d])))
                counter += 1
        self._drain(heap, counter, current, transitions, duration)

        waves = {}
        for idx, events in transitions.items():
            waves[idx] = Waveform.from_transitions(events, duration, initial=initial[idx])
        return waves

    def _drain(self, heap, counter, current, transitions, duration):
        circuit = self.circuit
        sink = circuit.sink_index
        scheduled = set()  # (time, node) pairs with a pending re-evaluation
        while heap:
            t, _, idx, value = heapq.heappop(heap)
            node = circuit.node(idx)
            if value is None:  # re-evaluation event
                scheduled.discard((t, idx))
                if node.kind is NodeKind.WIRE:
                    value = bool(current[circuit.inputs(idx)[0]])
                else:
                    stack = current[list(circuit.inputs(idx))][:, None]
                    value = bool(evaluate_function(node.function, stack)[0])
            if bool(current[idx]) == value:
                continue
            current[idx] = value
            if t <= duration:
                transitions[idx].append((t, value))
            for child in circuit.outputs(idx):
                if child == sink:
                    continue
                is_wire = circuit.node(child).kind is NodeKind.WIRE
                t_child = t + (self.wire_delay if is_wire else self.gate_delay)
                if (t_child, child) in scheduled:
                    continue
                scheduled.add((t_child, child))
                heapq.heappush(heap, (t_child, counter, child, None))
                counter += 1
