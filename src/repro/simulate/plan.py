"""Precompiled vectorized simulation plan (the cold-path tentpole).

:func:`~repro.simulate.levelized.simulate_levelized` with the reference
backend walks ``circuit.nodes`` in Python — one iteration per node, so a
cold similarity setup on c7552 spends most of its time in interpreter
overhead rather than boolean arithmetic.  :class:`SimPlan` compiles that
walk once per circuit into a handful of array programs:

* **wire-root redirection** — every wire's value equals its first
  non-wire ancestor's (driver or gate), so wires never need to be
  visited in evaluation order; gate inputs gather directly from the
  redirected roots and all wire rows are filled at the end by one
  fancy-indexed copy;
* **gate grouping** — gates are grouped by ``(level, function, fanin)``
  using the compiled circuit's longest-path levels; each group is
  evaluated for *all patterns at once* as a single gather
  ``values[in_idx]`` (shape ``(fanin, group, patterns)``) plus one
  :func:`~repro.simulate.logic.evaluate_function` call.

The number of Python-level steps per simulation is therefore the number
of *groups* (levels × distinct gate shapes), not the number of nodes.

Equality contract
-----------------
``SimPlan.simulate(patterns)`` returns **exactly** the boolean matrix
the reference levelized loop produces — boolean functions are exact, the
redirection preserves wire semantics (a wire's row equals its parent's
row, transitively its root's), and source/sink rows stay ``False``.
``tests/simulate/test_plan.py`` pins ``np.array_equal`` equality against
``simulate_levelized(..., backend="reference")`` over random generator
circuits, exhaustive small circuits, and the ISCAS85 netlists.

Plans are memoized on the circuit via :meth:`Circuit.sim_plan`
(mirroring ``CompiledCircuit.sweep_plan()``), so repeated analyses of
one circuit pay compilation once.
"""

import numpy as np

from repro.simulate.logic import evaluate_function
from repro.utils.errors import SimulationError


class SimPlan:
    """Compiled evaluation schedule for one :class:`Circuit`.

    Attributes
    ----------
    groups:
        Tuple of ``(function, in_idx, out_idx)`` entries in evaluation
        order; ``in_idx`` is an ``(fanin, group_size)`` int array of
        redirected input rows and ``out_idx`` the ``(group_size,)``
        output rows.  Groups are ordered by level, so every input row is
        final before its group runs.
    wire_rows / wire_roots:
        Wire node indices and their redirected roots — applied as one
        fancy-indexed row copy after all gate groups.
    """

    def __init__(self, circuit):
        cc = circuit.compile()  # memoized array form, shared with layout
        n = cc.num_nodes
        self.num_nodes = n
        self.num_drivers = cc.num_drivers

        # Wire-root redirection by pointer jumping: every wire starts at
        # its (unique, smaller-index) parent, then repeatedly replaces
        # its root with its root's root.  Non-wires are fixed points, so
        # this converges in O(log chain-length) passes of two gathers
        # each — no per-node Python.
        root = np.arange(n, dtype=np.int64)
        wires = cc.wire_indices
        if wires.size:
            root[wires] = cc.wire_parent[wires]
            while True:
                r = root[wires]
                rr = root[r]
                if np.array_equal(rr, r):
                    break
                root[wires] = rr
        self.wire_rows = wires
        self.wire_roots = np.ascontiguousarray(root[wires])

        # Gate grouping by (level, function, fanin).  The compiled
        # longest-path level is a valid schedule key: a gate's redirected
        # input roots lie upstream of it, so their levels are strictly
        # smaller and sorting groups by level keeps every input row
        # final before its group runs.  The only per-gate Python left is
        # one attribute read to intern each gate's logic function.
        gates = cc.gate_indices
        groups = []
        if gates.size:
            func_ids = {}
            func_list = []
            func_id = np.empty(gates.size, dtype=np.int64)
            nodes = circuit.nodes
            for k, i in enumerate(gates.tolist()):
                f = nodes[i].function
                fid = func_ids.get(f)
                if fid is None:
                    fid = func_ids[f] = len(func_list)
                    func_list.append(f)
                func_id[k] = fid
            fanin = cc.in_degree[gates]
            glevel = cc.level[gates]
            # Stable group-major order; boundaries where any key changes.
            order = np.lexsort((gates, fanin, func_id, glevel))
            glevel, func_id, fanin = glevel[order], func_id[order], fanin[order]
            gsort = gates[order]
            change = np.flatnonzero(
                (np.diff(glevel) != 0) | (np.diff(func_id) != 0)
                | (np.diff(fanin) != 0)) + 1
            bounds = np.concatenate(([0], change, [gates.size]))
            # Redirected root of every in-edge's source, in CSR order —
            # per group the (fanin, size) input matrix is one gather.
            edge_root = root[cc.edge_src[cc.in_edges]]
            for a, b in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
                out_idx = np.ascontiguousarray(gsort[a:b])
                f = int(fanin[a])
                pos = cc.in_ptr[out_idx][None, :] + \
                    np.arange(f, dtype=np.int64)[:, None]
                in_idx = np.ascontiguousarray(edge_root[pos])
                groups.append((func_list[int(func_id[a])], in_idx, out_idx))
        self.groups = tuple(groups)

    @property
    def num_groups(self):
        """Python-level steps per simulation (levels × gate shapes)."""
        return len(self.groups)

    def simulate(self, patterns):
        """Evaluate every node under ``patterns`` (see the module contract).

        ``patterns`` must already be validated boolean ``(n_patterns,
        num_drivers)`` — :func:`simulate_levelized` is the public entry.
        """
        values = np.zeros((self.num_nodes, patterns.shape[0]), dtype=bool)
        values[1:self.num_drivers + 1] = patterns.T
        for function, in_idx, out_idx in self.groups:
            values[out_idx] = evaluate_function(function, values[in_idx])
        if self.wire_rows.size:
            values[self.wire_rows] = values[self.wire_roots]
        return values

    @property
    def nbytes(self):
        total = self.wire_rows.nbytes + self.wire_roots.nbytes
        for _, in_idx, out_idx in self.groups:
            total += in_idx.nbytes + out_idx.nbytes
        return total

    def __repr__(self):
        return (f"SimPlan(nodes={self.num_nodes}, groups={self.num_groups}, "
                f"wires={self.wire_rows.size})")


def validate_patterns(circuit, patterns):
    """Shared pattern validation for both simulation backends."""
    patterns = np.asarray(patterns, dtype=bool)
    if patterns.ndim != 2:
        raise SimulationError("patterns must be a 2-D (n_patterns, n_inputs) array")
    n_drivers = circuit.num_drivers
    if patterns.shape[1] != n_drivers:
        raise SimulationError(
            f"patterns have {patterns.shape[1]} columns, circuit has {n_drivers} inputs"
        )
    return patterns
