"""Boolean gate functions.

Functions operate on a stacked boolean array of shape ``(fanin, ...)`` and
return the element-wise result of shape ``(...,)``, so the same registry
serves scalar evaluation, per-pattern vectors, and whole pattern matrices.
"""

import numpy as np

from repro.utils.errors import SimulationError


def _reduce_and(stack):
    return np.logical_and.reduce(stack, axis=0)


def _reduce_or(stack):
    return np.logical_or.reduce(stack, axis=0)


def _reduce_xor(stack):
    return np.logical_xor.reduce(stack, axis=0)


def _not(stack):
    return np.logical_not(stack[0])


def _buf(stack):
    return np.asarray(stack[0]).copy()


_REGISTRY = {
    "and": (_reduce_and, 2, None),
    "or": (_reduce_or, 2, None),
    "nand": (lambda s: np.logical_not(_reduce_and(s)), 2, None),
    "nor": (lambda s: np.logical_not(_reduce_or(s)), 2, None),
    "xor": (_reduce_xor, 2, None),
    "xnor": (lambda s: np.logical_not(_reduce_xor(s)), 2, None),
    "not": (_not, 1, 1),
    "buf": (_buf, 1, 1),
}

#: Names accepted by :func:`evaluate_function` (and by gate construction).
SUPPORTED_FUNCTIONS = frozenset(_REGISTRY)


def validate_function(name, fanin):
    """Raise :class:`SimulationError` unless ``name`` accepts ``fanin`` inputs."""
    try:
        _, min_in, max_in = _REGISTRY[name]
    except KeyError:
        raise SimulationError(f"unknown gate function {name!r}") from None
    if fanin < min_in or (max_in is not None and fanin > max_in):
        raise SimulationError(
            f"gate function {name!r} does not accept fan-in {fanin} "
            f"(needs {min_in}{'+' if max_in is None else f'..{max_in}'})"
        )


def evaluate_function(name, inputs):
    """Evaluate gate ``name`` on ``inputs`` (array-like, shape ``(fanin, ...)``).

    Returns a boolean ndarray of shape ``inputs.shape[1:]``.
    """
    stack = np.asarray(inputs, dtype=bool)
    if stack.ndim < 1 or stack.shape[0] < 1:
        raise SimulationError("evaluate_function needs at least one input row")
    validate_function(name, stack.shape[0])
    fn, _, _ = _REGISTRY[name]
    return np.asarray(fn(stack), dtype=bool)
