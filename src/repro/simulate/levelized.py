"""Zero-delay levelized logic simulation.

Computes the steady-state value of every node for every pattern in one
topological pass.  Two backends are provided (mirroring
:class:`~repro.timing.elmore.ElmoreEngine`'s ``backend`` switch):

* ``"plan"`` (default) — the precompiled :class:`~repro.simulate.plan.
  SimPlan`: gates grouped by level × function × fan-in, one vectorized
  gather + ``evaluate_function`` call per group, wires filled by a
  single fancy-indexed copy.  Python-level work scales with the number
  of *groups*, not nodes.
* ``"reference"`` — the direct per-node loop, kept forever as the
  executable specification; the plan backend's output is pinned to it
  by exact boolean equality (``tests/simulate/test_plan.py``).

The result feeds :func:`repro.noise.similarity.similarity_from_values`,
the default (cycle-accurate) form of the paper's switching similarity.
"""

import numpy as np

from repro.circuit.components import NodeKind
from repro.simulate.logic import evaluate_function
from repro.simulate.plan import validate_patterns
from repro.utils.errors import SimulationError

#: Accepted ``backend`` values for :func:`simulate_levelized`.
SIM_BACKENDS = ("plan", "reference")


def simulate_levelized(circuit, patterns, backend="plan"):
    """Simulate ``circuit`` under ``patterns``.

    Parameters
    ----------
    circuit:
        A :class:`~repro.circuit.circuit.Circuit`.
    patterns:
        Boolean array ``(n_patterns, n_drivers)``; column ``d`` drives the
        primary input with node index ``d + 1``.
    backend:
        ``"plan"`` (compiled, default) or ``"reference"`` (per-node
        loop).  Both return identical values.

    Returns
    -------
    numpy.ndarray
        Boolean array ``(num_nodes, n_patterns)``.  Source and sink rows
        are ``False``; a wire's row equals its parent's row.
    """
    patterns = validate_patterns(circuit, patterns)
    if backend == "plan":
        return circuit.sim_plan().simulate(patterns)
    if backend == "reference":
        return _simulate_reference(circuit, patterns)
    raise SimulationError(
        f"unknown simulation backend {backend!r}; choose from {SIM_BACKENDS}")


def _simulate_reference(circuit, patterns):
    """The per-node topological loop — the plan backend's specification."""
    n_patterns = patterns.shape[0]
    values = np.zeros((circuit.num_nodes, n_patterns), dtype=bool)
    for node in circuit.nodes:
        if node.kind is NodeKind.DRIVER:
            values[node.index] = patterns[:, node.index - 1]
        elif node.kind is NodeKind.WIRE:
            parent = circuit.inputs(node.index)[0]
            values[node.index] = values[parent]
        elif node.kind is NodeKind.GATE:
            stack = values[list(circuit.inputs(node.index))]
            values[node.index] = evaluate_function(node.function, stack)
    return values
