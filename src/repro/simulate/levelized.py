"""Zero-delay levelized logic simulation.

Computes the steady-state value of every node for every pattern in one
topological pass.  Because node indices are topological, a single loop
over nodes suffices; each node's values for *all* patterns are computed as
one vectorized operation, so the cost is O(#nodes · #patterns / simd).

The result feeds :func:`repro.noise.similarity.similarity_from_values`,
the default (cycle-accurate) form of the paper's switching similarity.
"""

import numpy as np

from repro.circuit.components import NodeKind
from repro.simulate.logic import evaluate_function
from repro.utils.errors import SimulationError


def simulate_levelized(circuit, patterns):
    """Simulate ``circuit`` under ``patterns``.

    Parameters
    ----------
    circuit:
        A :class:`~repro.circuit.circuit.Circuit`.
    patterns:
        Boolean array ``(n_patterns, n_drivers)``; column ``d`` drives the
        primary input with node index ``d + 1``.

    Returns
    -------
    numpy.ndarray
        Boolean array ``(num_nodes, n_patterns)``.  Source and sink rows
        are ``False``; a wire's row equals its parent's row.
    """
    patterns = np.asarray(patterns, dtype=bool)
    if patterns.ndim != 2:
        raise SimulationError("patterns must be a 2-D (n_patterns, n_inputs) array")
    n_drivers = circuit.num_drivers
    if patterns.shape[1] != n_drivers:
        raise SimulationError(
            f"patterns have {patterns.shape[1]} columns, circuit has {n_drivers} inputs"
        )
    n_patterns = patterns.shape[0]
    values = np.zeros((circuit.num_nodes, n_patterns), dtype=bool)
    for node in circuit.nodes:
        if node.kind is NodeKind.DRIVER:
            values[node.index] = patterns[:, node.index - 1]
        elif node.kind is NodeKind.WIRE:
            parent = circuit.inputs(node.index)[0]
            values[node.index] = values[parent]
        elif node.kind is NodeKind.GATE:
            stack = values[list(circuit.inputs(node.index))]
            values[node.index] = evaluate_function(node.function, stack)
    return values
