"""Piecewise-constant ±1 waveforms.

The paper's switching similarity (Sec. 3.2) integrates the product of two
normalized waveforms ``f(i,t) ∈ {+1, −1}`` over the simulation duration:

    similarity(i, j) = ∫₀ᵀ f(i,t)·f(j,t) dt / T

:class:`Waveform` stores the transition times and values exactly, so the
product integral is computed in closed form (no sampling error).
"""

import numpy as np

from repro.utils.errors import SimulationError


class Waveform:
    """A right-continuous piecewise-constant signal with values in {+1, −1}.

    ``times[k]`` is the instant the signal takes ``values[k]``; the value
    holds on ``[times[k], times[k+1])`` and the last value holds through
    ``duration``.  ``times[0]`` must be 0.
    """

    __slots__ = ("times", "values", "duration")

    def __init__(self, times, values, duration):
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=np.int8)
        if times.ndim != 1 or times.shape != values.shape or times.size == 0:
            raise SimulationError("times and values must be matching non-empty 1-D arrays")
        if times[0] != 0.0:
            raise SimulationError("waveforms must start at t=0")
        if np.any(np.diff(times) <= 0):
            raise SimulationError("transition times must be strictly increasing")
        if duration < times[-1]:
            raise SimulationError("duration must cover the last transition")
        if not np.all(np.isin(values, (-1, 1))):
            raise SimulationError("waveform values must be +1 or -1")
        self.times = times
        self.values = values
        self.duration = float(duration)

    # -- constructors -------------------------------------------------------------

    @classmethod
    def from_bits(cls, bits, cycle=1.0):
        """Waveform from one boolean value per cycle (levelized simulation).

        ``bits[p]`` holds on ``[p·cycle, (p+1)·cycle)``; consecutive equal
        bits are merged into one segment.
        """
        bits = np.asarray(bits, dtype=bool)
        if bits.ndim != 1 or bits.size == 0:
            raise SimulationError("bits must be a non-empty 1-D array")
        if cycle <= 0:
            raise SimulationError("cycle must be positive")
        keep = np.concatenate(([True], bits[1:] != bits[:-1]))
        times = np.flatnonzero(keep) * float(cycle)
        values = np.where(bits[keep], 1, -1)
        return cls(times, values, duration=bits.size * float(cycle))

    @classmethod
    def from_transitions(cls, transitions, duration, initial=-1):
        """Waveform from ``(time, bool_value)`` events (event-driven sim).

        Events before t=0 are rejected; consecutive events that do not
        change the value are dropped.
        """
        times = [0.0]
        values = [1 if (initial in (1, True)) else -1]
        # Stable sort on time only: same-instant events must keep their
        # original order so the *last* recorded event wins.
        for t, v in sorted(transitions, key=lambda tv: tv[0]):
            if t < 0:
                raise SimulationError("transition times must be non-negative")
            level = 1 if v else -1
            if t == times[-1]:
                # Same-instant update: the later event wins (zero-width
                # glitch); drop the entry entirely if it becomes redundant.
                if len(times) == 1:
                    values[0] = level  # transition exactly at t = 0
                    continue
                times.pop()
                values.pop()
            if level != values[-1]:
                times.append(float(t))
                values.append(level)
        return cls(np.array(times), np.array(values), duration)

    # -- queries ------------------------------------------------------------------

    def at(self, t):
        """Signal value at time ``t`` (right-continuous; clamps past the end)."""
        if t < 0 or t > self.duration:
            raise SimulationError(f"time {t} outside [0, {self.duration}]")
        k = int(np.searchsorted(self.times, t, side="right")) - 1
        return int(self.values[k])

    @property
    def num_transitions(self):
        """Number of value changes after t=0."""
        return len(self.times) - 1

    def high_fraction(self):
        """Fraction of the duration spent at +1."""
        return (self.product_integral(_constant_one(self.duration)) / self.duration + 1) / 2

    def product_integral(self, other):
        """Exact ``∫₀ᵀ f(t)·g(t) dt`` (both waveforms must share ``duration``)."""
        if not isinstance(other, Waveform):
            raise SimulationError("product_integral expects another Waveform")
        if other.duration != self.duration:
            raise SimulationError("waveforms must share the same duration")
        cuts = np.union1d(self.times, other.times)
        widths = np.diff(np.append(cuts, self.duration))
        mine = self.values[np.searchsorted(self.times, cuts, side="right") - 1]
        theirs = other.values[np.searchsorted(other.times, cuts, side="right") - 1]
        return float(np.sum(widths * mine.astype(float) * theirs.astype(float)))

    def similarity(self, other):
        """The paper's ``similarity`` in [−1, 1]: product integral over T."""
        if self.duration == 0:
            raise SimulationError("cannot normalize over zero duration")
        return self.product_integral(other) / self.duration

    def __eq__(self, other):
        return (
            isinstance(other, Waveform)
            and self.duration == other.duration
            and np.array_equal(self.times, other.times)
            and np.array_equal(self.values, other.values)
        )

    def __repr__(self):
        return f"Waveform(transitions={self.num_transitions}, duration={self.duration})"


def _constant_one(duration):
    return Waveform([0.0], [1], duration)
