"""Test-pattern generation.

Patterns are boolean arrays of shape ``(n_patterns, n_inputs)``; row ``p``
is the primary-input vector applied during cycle ``p``.  The paper takes
patterns "from the logic simulation stage"; with no testbench available we
use seeded random vectors by default (see DESIGN.md §3).
"""

import numpy as np

from repro.utils.errors import SimulationError
from repro.utils.rng import make_rng


def random_patterns(n_inputs, n_patterns, seed=0, p_high=0.5):
    """Independent Bernoulli(``p_high``) vectors; the default workload."""
    if n_inputs < 1 or n_patterns < 1:
        raise SimulationError("n_inputs and n_patterns must be >= 1")
    if not 0.0 <= p_high <= 1.0:
        raise SimulationError("p_high must lie in [0, 1]")
    rng = make_rng(seed)
    return rng.random((n_patterns, n_inputs)) < p_high


def exhaustive_patterns(n_inputs):
    """All ``2**n_inputs`` vectors in counting order (small circuits only)."""
    if n_inputs < 1:
        raise SimulationError("n_inputs must be >= 1")
    if n_inputs > 20:
        raise SimulationError("exhaustive_patterns is limited to 20 inputs")
    count = 1 << n_inputs
    bits = (np.arange(count)[:, None] >> np.arange(n_inputs)[None, :]) & 1
    return bits.astype(bool)


def toggle_patterns(n_inputs, n_patterns):
    """Deterministic checkerboard: input ``i`` toggles every ``i+1`` cycles.

    Useful in tests because every input has a known, distinct switching
    rate (input 0 toggles fastest).
    """
    if n_inputs < 1 or n_patterns < 1:
        raise SimulationError("n_inputs and n_patterns must be >= 1")
    cycles = np.arange(n_patterns)[:, None]
    periods = np.arange(1, n_inputs + 1)[None, :]
    return (cycles // periods) % 2 == 1
