"""Gate-level logic simulation substrate.

Switching similarity (paper Sec. 3.2) needs per-wire waveforms "available
from the logic simulation stage".  This package provides that stage:

* :mod:`~repro.simulate.logic` — the boolean gate-function registry,
* :mod:`~repro.simulate.patterns` — seeded/exhaustive test patterns,
* :func:`~repro.simulate.levelized.simulate_levelized` — vectorized
  zero-delay simulation (one steady value per node per pattern), the
  default input to similarity analysis, with a precompiled
  :class:`~repro.simulate.plan.SimPlan` backend (default) and the
  per-node ``"reference"`` loop it is pinned against,
* :class:`~repro.simulate.events.EventDrivenSimulator` — unit-delay
  event-driven simulation producing real time-domain waveforms (captures
  glitches; used for the timed similarity variant and demos),
* :class:`~repro.simulate.waveforms.Waveform` — piecewise-constant ±1
  signals with exact product integrals.
"""

from repro.simulate.events import EventDrivenSimulator
from repro.simulate.levelized import SIM_BACKENDS, simulate_levelized
from repro.simulate.logic import SUPPORTED_FUNCTIONS, evaluate_function
from repro.simulate.patterns import exhaustive_patterns, random_patterns, toggle_patterns
from repro.simulate.plan import SimPlan
from repro.simulate.waveforms import Waveform

__all__ = [
    "SIM_BACKENDS",
    "SUPPORTED_FUNCTIONS",
    "SimPlan",
    "evaluate_function",
    "random_patterns",
    "exhaustive_patterns",
    "toggle_patterns",
    "simulate_levelized",
    "EventDrivenSimulator",
    "Waveform",
]
