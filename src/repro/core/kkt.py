"""KKT optimality certificate (paper Theorem 6).

Theorem 6 characterizes the optimum of problem ``PP`` by five condition
groups; :func:`check_kkt` evaluates all of them at a candidate solution
and returns normalized residuals, giving an *a posteriori* optimality
certificate independent of the optimizer's own bookkeeping:

1. flow conservation of the edge multipliers (Theorem 3),
2. complementary slackness of every constraint,
3. primal feasibility,
4. multiplier non-negativity (guaranteed structurally, still reported),
5. the fixed-point condition ``x_i = min(U_i, max(L_i, opt_i))``.
"""

import dataclasses

import numpy as np

from repro.core.subgradient import edge_timing_terms
from repro.timing.metrics import evaluate_metrics
from repro.utils.units import FF_PER_PF


@dataclasses.dataclass(frozen=True)
class KKTReport:
    """Normalized residuals of the Theorem 6 conditions (0 = exact)."""

    flow_conservation: float
    complementary_slackness: float
    primal_feasibility: float
    multiplier_nonnegativity: float
    sizing_fixed_point: float

    def max_residual(self):
        return max(
            self.flow_conservation,
            self.complementary_slackness,
            self.primal_feasibility,
            self.multiplier_nonnegativity,
            self.sizing_fixed_point,
        )

    def satisfied(self, tolerance=1e-2):
        """Whether every condition holds within relative ``tolerance``."""
        return self.max_residual() <= tolerance


def check_kkt(engine, problem, x, multipliers, lrs=None):
    """Evaluate Theorem 6 at ``(x, multipliers)``.

    ``lrs`` (a :class:`LagrangianSubproblemSolver`) supplies the
    fixed-point re-evaluation; a default one is built if omitted.
    """
    from repro.core.lrs import LagrangianSubproblemSolver

    cc = engine.compiled
    lrs = lrs or LagrangianSubproblemSolver(engine)

    # (1) flow conservation, normalized by the mean positive multiplier.
    lam_scale = float(np.mean(multipliers.lam_edge)) or 1.0
    flow = multipliers.conservation_residual() / max(lam_scale, 1e-30)

    # (2) complementary slackness: λ_e · residual_e and β/γ · slack.
    delays = engine.delays(x)
    arrival = engine.arrival_times(delays)
    residual, reference = edge_timing_terms(cc, arrival, delays,
                                            problem.delay_bound_ps)
    edge_cs = np.abs(multipliers.lam_edge * residual / reference)
    metrics = evaluate_metrics(engine, x)
    noise_ff = metrics.noise_pf * FF_PER_PF
    scalar_cs = [
        abs(multipliers.beta * (metrics.total_cap_ff / problem.power_cap_bound_ff - 1.0)),
        abs(multipliers.gamma * (noise_ff / problem.noise_bound_ff - 1.0)),
    ]
    slackness = float(max(np.max(edge_cs, initial=0.0) / max(lam_scale, 1e-30),
                          max(scalar_cs)))

    # (3) primal feasibility (positive part of relative violations).
    feasibility = max(0.0, *problem.violations(metrics).values())

    # (4) non-negativity (structurally enforced; report any drift).
    nonneg = float(max(0.0, -min(np.min(multipliers.lam_edge, initial=0.0),
                                 multipliers.beta, multipliers.gamma)))

    # (5) x is the Theorem 5 fixed point: one LRS pass must not move it.
    one_pass = LagrangianSubproblemSolver(engine, max_passes=1, tolerance=0.0)
    moved = one_pass.solve(multipliers, x0=x).x
    mask = cc.is_sizable
    fixed_point = float(np.max(np.abs(moved - x)[mask] / np.maximum(x[mask], 1e-12),
                               initial=0.0))

    return KKTReport(
        flow_conservation=flow,
        complementary_slackness=slackness,
        primal_feasibility=feasibility,
        multiplier_nonnegativity=nonneg,
        sizing_fixed_point=fixed_point,
    )
