"""Region-decomposed OGWS: the partitioned parallel Lagrangian path.

Solves one large circuit as K region subproblems advanced in lockstep
at the outer-iteration level, the ParaLarH-style decomposition
(PAPERS.md, arXiv 2010.11893) over this library's Lagrangian machinery:

* :func:`~repro.core.partition.partition_circuit` splits the circuit
  into K level-respecting regions (cut edges only point forward);
* every region gets the full per-circuit pipeline — similarity
  analysis, channel layout, stage-1 ordering, Miller-weighted coupling,
  kernel-backed Elmore engine — through its own
  :class:`~repro.core.session.SolverSession`, so a region is an
  ordinary OGWS problem, just smaller;
* boundary timing crosses regions through **pseudo-driver arrival
  offsets** (:attr:`~repro.timing.elmore.ElmoreEngine.arrival_offsets`):
  a cut producer's arrival time becomes a fixed delay adder on the
  consumer's pseudo-driver, so arrival sweeps, A4 residuals, and the
  Lagrangian value in the consumer region are all expressed in *global*
  time;
* the outer iteration is an **ascending Gauss–Seidel consensus
  sweep**: each region solves its full Fig. 9 loop against boundary
  offsets frozen at the partners' latest actual arrivals (upstream
  partners already reflect the current sweep, since cut edges only
  point forward), then publishes its own final arrivals downstream.
  Boundary times are exchanged once per region per sweep, and the
  consensus is monotone in the bounds: a region whose original delay
  budget became unreachable under the exchanged inputs re-budgets to
  ``max(original, delay_slack × delay(x_init | inputs))`` — bounds
  only ever relax, and the region's initial point stays feasible by
  construction.  Sweeps repeat (warm-started; settled regions are
  skipped) until the composed global delay meets the global bound or
  ``MAX_SWEEPS`` is reached.

Per-region bounds come from :meth:`SizingProblem.from_initial` at the
region's *offset-including* initial metrics, which distributes the
global delay slack proportionally along the critical path (each
region's outputs get ``delay_slack ×`` their initial global arrival —
self-consistent with the monolithic ``A0`` at the true primary
outputs).  The reported record aggregates regions back to circuit
level: summed noise/power/area, the true forward-propagated global
delay at the final sizes, and feasibility against the monolithic-style
global bounds (aggregate metrics vs aggregate bounds, exactly the
monolithic contract).  Equivalence with the monolithic path is
*approximate* by design — cut stubs add load, per-region layouts
change coupling — and is pinned by property tests to the documented
tolerance (``PARTITION_TOLERANCE``; see docs/architecture.md).
"""

import time

import numpy as np

from repro.core.ogws import OGWSOptimizer
from repro.core.partition import MIN_REGION_GATES
from repro.core.problem import SizingProblem
from repro.timing.metrics import CircuitMetrics, EvalContext
from repro.utils.units import FF_PER_PF, mw_from_v2fc

#: Upper bound on the region count the ``auto`` policy picks.
MAX_AUTO_REGIONS = 16

#: Documented partitioned-vs-monolithic tolerance: relative deviation of
#: the final objective (area) between ``run_partitioned`` and the
#: monolithic path on the same scenario, at threshold scale (auto
#: partitioning, K <= 4 per 20k gates).  The gap comes from cut stubs
#: (extra load), per-region channel layouts (different coupling pairs),
#: and the boundary driver approximation, so it grows with the cut
#: fraction: forcing a high K onto a sub-threshold circuit can double
#: it.  The partition property tests pin both regimes.
PARTITION_TOLERANCE = 0.15

#: Cap on the Gauss–Seidel consensus sweeps (sweeps after the first are
#: warm-started and skip settled regions, so they cost little).
MAX_SWEEPS = 3

#: Stop a region solve once the best feasible area has not improved for
#: this many consecutive iterations.  Region subproblems carry constant
#: boundary-offset terms in their Lagrangian, which leaves a structural
#: duality gap the A7 stop rule can never close — without this, every
#: region with upstream inputs burns its full iteration budget for no
#: primal progress.
STALL_ITERATIONS = 8

#: Region-level feasibility tolerance.  Deliberately tighter than the
#: monolithic 1e-3: regions sitting exactly at their own tolerance
#: compose to a circuit-level violation just over it, so the partitioned
#: path holds each region to a fraction of the global slop.
REGION_FEASIBILITY_TOLERANCE = 2e-4

#: Delay tolerance for the *global* partitioned feasibility verdict.
#: Noise/power compose exactly (they are sums of region metrics), so
#: they keep the monolithic 1e-3; the composed delay carries a
#: consensus residual — cut outputs may use slack the scalar region
#: bound grants them but the downstream budget did not anticipate — so
#: the delay check allows this documented extra margin.
PARTITION_DELAY_TOLERANCE = 5e-3


def resolve_partitions(partitions, threshold, n_gates):
    """Effective region count for a circuit of ``n_gates`` gates.

    ``partitions`` semantics (the ``FlowConfig`` axis / ``--partitions``
    flag): ``0`` = auto (one region per ``threshold`` gates, capped at
    :data:`MAX_AUTO_REGIONS`), ``1`` = never partition, ``N >= 2`` =
    use exactly N regions.  Circuits below ``threshold`` gates (or any
    circuit when ``threshold <= 0``) always take the monolithic path,
    and the count is clamped so every region keeps at least
    :data:`~repro.core.partition.MIN_REGION_GATES` gates.  Returns 1
    for "run monolithic".
    """
    partitions, threshold = int(partitions), int(threshold)
    n_gates = int(n_gates)
    if partitions == 1 or threshold <= 0 or n_gates < threshold:
        return 1
    if partitions >= 2:
        k = partitions
    else:
        k = max(2, min(MAX_AUTO_REGIONS, -(-n_gates // threshold)))
    k = min(k, n_gates // MIN_REGION_GATES)
    return k if k >= 2 else 1


def run_partitioned(session, scenario, k):
    """Solve ``scenario`` over ``session``'s circuit as ``k`` regions.

    Returns a :class:`~repro.runtime.records.RunRecord` of the same
    shape the monolithic :class:`~repro.core.session.ScenarioBatch`
    produces (aggregated metrics, gathered global sizes, ``partitions``
    /``cut_edges`` diagnostics).  Fully deterministic: same ref +
    config → byte-identical record, warm or cold, any executor.
    """
    from repro.runtime.records import RunRecord

    config = scenario.config
    started = time.perf_counter()
    plan, region_sessions = session.partition_artifacts(k, config.seed)
    seed = scenario.seed
    n_regions = plan.k

    engines = []
    offsets = []
    cost_before = cost_after = 0.0
    for rs in region_sessions:
        engine = rs.engine(config.ordering, config.n_patterns, seed,
                           config.miller_mode, config.coupling_order,
                           config.delay_mode)
        off = np.zeros(rs.compiled.num_nodes)
        engine.arrival_offsets = off
        engines.append(engine)
        offsets.append(off)
        _, before, after = rs.stage1(config.ordering, config.n_patterns, seed)
        cost_before += before
        cost_after += after

    # Initial propagation at x_init, ascending regions: a region's
    # pseudo-driver offsets are final before its metrics are evaluated
    # (cut edges only point forward), so per-region initial metrics are
    # already in global time.
    x_inits, initial_metrics = [], []
    init_delay = 0.0
    for r, (rs, engine) in enumerate(zip(region_sessions, engines)):
        x_init = rs.compiled.default_sizes(np.inf)
        context = EvalContext(engine, x_init)
        arrival = context.arrival
        for rr in range(r + 1, n_regions):
            pair = plan.exchange[rr].get(r)
            if pair is not None:
                dst, src = pair
                offsets[rr][dst] = arrival[src]
        po = plan.regions[r].true_po_local
        if len(po):
            init_delay = max(init_delay, float(arrival[po].max()))
        x_inits.append(x_init)
        initial_metrics.append(context.metrics)
    # The consensus floor: boundary times from the initial propagation.
    # Each region's budget (below) is delay_slack × its initial global
    # arrival, which presumes inputs near the floor; the exchange caps
    # published boundary times at delay_slack × floor so that promise
    # stays honest.
    floors = [off.copy() for off in offsets]

    # Per-region budgets: delay_slack × the region's initial global
    # arrival (proportional slack along the critical path), noise/power
    # as the usual fractions of the region's own initials.
    optimizers = []
    for engine, x_init, metrics in zip(engines, x_inits, initial_metrics):
        problem = SizingProblem.from_initial(
            engine, x_init, delay_slack=config.delay_slack,
            noise_fraction=config.noise_fraction,
            power_fraction=config.power_fraction, metrics=metrics)
        optimizers.append(OGWSOptimizer(
            engine, problem, x_init=x_init, initial_metrics=metrics,
            max_iterations=config.max_iterations,
            tolerance=config.tolerance,
            feasibility_tolerance=REGION_FEASIBILITY_TOLERANCE,
            update=config.update))

    results = [None] * n_regions
    mults = [None] * n_regions
    iterations = [0] * n_regions
    solved_inputs = [None] * n_regions
    # Region subproblems get a reduced budget: boundary-offset terms
    # keep the A7 gap from certifying convergence, so unlike the
    # monolithic run the regions would otherwise always burn the full
    # budget for a tail of sub-percent area gains.
    cold_budget = max(16, config.max_iterations // 2)
    resolve_budget = max(8, config.max_iterations // 5)

    def solve_sweep(cap):
        """One ascending Gauss–Seidel sweep.

        Solves every region whose pseudo-driver offsets moved since its
        last solve (warm-started with a reduced iteration budget on
        re-solves), then publishes its actual output arrivals to the
        downstream offsets — capped at ``delay_slack × floor`` when
        ``cap`` is set.  The cap is what keeps every subproblem
        *solvable*: a region's delay budget anticipates inputs no later
        than ``delay_slack ×`` the initial propagation, so capped
        inputs leave its initial point feasible by construction,
        whereas publishing a raw upstream slip can render the fixed
        budget unreachable and the slack relaxation that would repair
        it compounds down the chain.  Returns whether any region's
        sizing changed.
        """
        changed = False
        for r, opt in enumerate(optimizers):
            if solved_inputs[r] is None or \
                    not np.array_equal(solved_inputs[r], offsets[r]):
                budget = cold_budget if results[r] is None \
                    else resolve_budget
                solved_inputs[r] = offsets[r].copy()
                state = opt.start(multipliers=mults[r])
                state.x = results[r].x if results[r] is not None else None
                stall, best_area = 0, np.inf
                while not state.done and state.iteration < budget:
                    x0 = state.x if (opt.warm_start_lrs and
                                     state.x is not None) else None
                    opt.step(state, opt.lrs.solve(state.mult, x0=x0))
                    if state.best_feasible_x is None:
                        continue
                    if state.best_feasible_area < best_area * (1.0 - 1e-4):
                        best_area = state.best_feasible_area
                        stall = 0
                    else:
                        stall += 1
                        if stall >= STALL_ITERATIONS:
                            break
                candidate = opt.finish(state)
                # An infeasible warm re-solve may still beat the old
                # sizing *under the current inputs*: the old x was
                # optimized against different offsets and its stored
                # metrics are stale.  Re-evaluate it at today's offsets
                # and keep whichever sizing violates less.
                if results[r] is None or candidate.feasible:
                    accept = True
                else:
                    old = EvalContext(engines[r], results[r].x).metrics
                    accept = max(opt.problem.violations(
                        candidate.metrics).values()) < max(
                        opt.problem.violations(old).values())
                if accept:
                    if results[r] is None or \
                            not np.array_equal(results[r].x, candidate.x):
                        changed = True
                    results[r] = candidate
                mults[r] = state.mult
                iterations[r] += state.iteration
            arrival = EvalContext(engines[r], results[r].x).arrival
            for rr in range(r + 1, n_regions):
                pair = plan.exchange[rr].get(r)
                if pair is not None:
                    dst, src = pair
                    published = arrival[src]
                    if cap:
                        published = np.minimum(
                            published,
                            config.delay_slack * floors[rr][dst])
                    offsets[rr][dst] = published
        return changed

    def honest_propagate():
        """Forward-propagate actual arrivals; returns the global delay.

        Overwrites the exchange offsets with the true (uncapped)
        upstream arrivals region by region, so afterwards the offsets
        are exactly the boundary times of the assembled circuit at the
        current sizes.
        """
        delay = 0.0
        for r in range(n_regions):
            arrival = EvalContext(engines[r], results[r].x).arrival
            for rr in range(r + 1, n_regions):
                pair = plan.exchange[rr].get(r)
                if pair is not None:
                    dst, src = pair
                    offsets[rr][dst] = arrival[src]
            po = plan.regions[r].true_po_local
            if len(po):
                delay = max(delay, float(arrival[po].max()))
        return delay

    # Outer consensus: one capped sweep (all cold solves, each region's
    # subproblem stationary and solvable), then the honest uncapped
    # propagation.  Where the truth exceeds the cap the affected
    # regions' offsets moved, so follow-up sweeps — warm-started,
    # re-solving only those regions against the true arrivals — run
    # until the composed delay meets the global bound or MAX_SWEEPS is
    # exhausted.
    delay_bound = config.delay_slack * init_delay
    solve_sweep(cap=True)
    final_delay = honest_propagate()
    for _ in range(MAX_SWEEPS - 1):
        if final_delay <= delay_bound * (1.0 + PARTITION_DELAY_TOLERANCE):
            break
        if not solve_sweep(cap=False):
            break  # the re-sweep was a no-op; more cycles cannot help
        final_delay = honest_propagate()

    # Global feasibility is judged exactly like the monolithic path:
    # aggregate metrics against aggregate bounds (delay from the honest
    # forward propagation, noise/power as sums), not per-region flags —
    # regions may trade slack across the cut as long as the circuit-level
    # contract holds.
    tech = session.circuit.tech
    agg_initial = _aggregate(initial_metrics, init_delay, tech)
    agg_final = _aggregate([res.metrics for res in results], final_delay,
                           tech)
    noise_init_ff = agg_initial.noise_pf * FF_PER_PF
    global_problem = SizingProblem(
        delay_bound_ps=delay_bound,
        noise_bound_ff=config.noise_fraction * noise_init_ff
        if noise_init_ff > 0 else float("inf"),
        power_cap_bound_ff=config.power_fraction * agg_initial.total_cap_ff)
    violations = global_problem.violations(agg_final)
    feasible = violations["delay"] <= PARTITION_DELAY_TOLERANCE and all(
        v <= 1e-3 for name, v in violations.items() if name != "delay")

    x_global = plan.gather([res.x for res in results])
    return RunRecord(
        scenario=scenario,
        feasible=bool(feasible),
        converged=all(res.converged for res in results),
        iterations=max(iterations),
        duality_gap=max(res.duality_gap for res in results),
        ordering_cost_before=float(cost_before),
        ordering_cost_after=float(cost_after),
        initial_metrics=agg_initial,
        metrics=agg_final,
        sizes=tuple(float(x) for x in x_global),
        diagnostics={
            "repair_evals": sum(int(res.repair_evals) for res in results),
            "partitions": n_regions,
            "cut_edges": plan.cut_count,
        },
        runtime_s=time.perf_counter() - started,
        memory_bytes=sum(int(res.memory_bytes) for res in results),
        fingerprint=session.fingerprint(),
    )


def _aggregate(metrics_list, delay_ps, tech):
    """Circuit-level :class:`CircuitMetrics` from per-region rows."""
    total_cap = sum(m.total_cap_ff for m in metrics_list)
    return CircuitMetrics(
        noise_pf=sum(m.noise_pf for m in metrics_list),
        delay_ps=float(delay_ps),
        power_mw=mw_from_v2fc(tech.supply_voltage, tech.clock_frequency,
                              total_cap),
        area_um2=sum(m.area_um2 for m in metrics_list),
        total_cap_ff=total_cap,
    )
