"""The paper's complete two-stage flow (Sec. 1).

Stage 1 — **switching-aware wire ordering**: simulate the circuit, build
per-channel similarity matrices, order each channel's tracks with WOSS
(or a baseline) minimizing the total effective loading ``Σ (1 − s_ij)``.

Stage 2 — **simultaneous gate and wire sizing**: extract Miller-weighted
coupling for the ordered layout and run OGWS to minimize area under the
delay, crosstalk, and power bounds.

:class:`NoiseAwareSizingFlow` wires the stages together; it is the
top-level entry point the examples and the Table 1 bench use.  Since the
SolverSession refactor it is a thin K = 1 wrapper: ``run()`` builds a
single-use :class:`~repro.core.session.SolverSession` over its circuit
and executes through it, so the one-circuit-one-config path and the
batched multi-scenario path share one implementation (and stay
bit-identical by construction).  The stage-1 helpers
(:func:`resolve_ordering`, :func:`order_channel_wires`) live here as
module functions for the same reason.
"""

import dataclasses

import numpy as np

from repro.noise.miller import MillerMode
from repro.noise.ordering import (
    _path_cost,
    greedy_both_ends,
    random_ordering,
    woss_ordering,
)
from repro.timing.elmore import CouplingDelayMode
from repro.utils.errors import ValidationError
from repro.utils.rng import stable_seed

#: Stage 1 algorithms accepted by name (`NoiseAwareSizingFlow`, config, CLI).
ORDERING_NAMES = ("woss", "greedy2", "random", "none")


def resolve_ordering(name, seed=0):
    """The stage-1 ordering callable for a name from :data:`ORDERING_NAMES`.

    ``seed`` only matters for ``"random"``: per-channel seeds derive
    from it plus the channel label, so two flows with different seeds
    explore different random orderings while each stays reproducible
    cross-process.
    """
    if name == "woss":
        def woss(weights, label, sort_keys=None):
            return woss_ordering(weights, sort_keys=sort_keys)

        woss.accepts_sort_keys = True
        return woss
    if name == "greedy2":
        return lambda weights, label: greedy_both_ends(weights)
    if name == "random":
        return lambda weights, label: random_ordering(
            len(weights), seed=stable_seed(seed, "ordering", label))
    if name == "none":
        return lambda weights, label: list(range(len(weights)))
    raise ValidationError(
        f"unknown ordering {name!r}; choose from {sorted(ORDERING_NAMES)}")


def order_channel_wires(analyzer, layout, ordering):
    """Stage 1: per-channel track ordering from switching similarity.

    ``ordering`` is a callable ``(weights, label) → permutation``.
    Returns ``(ordered_layout, cost_before, cost_after)`` where the
    costs are the summed ``1 − similarity`` over adjacent pairs.

    All channel similarity data comes from one batched analyzer call (a
    single block gather of every channel's rows), and the adjacent-pair
    costs are one fancy-indexed sum per channel — no per-wire Python
    work.  Ordering callables that declare ``accepts_sort_keys`` (WOSS)
    receive the analyzer's integer distance keys via
    :meth:`SimilarityAnalyzer.sort_keys_many`, trading the per-step
    argmin loop for one sorted prefix walk per channel; on that path
    neither the float weight matrix nor the float64 similarity matrix is
    ever materialized (the keys determine the order, and
    :meth:`SimilarityAnalyzer.path_dissimilarity` sums the costs from
    gathered Gram entries — bitwise-identical, since the elementwise
    ``1 − s`` commutes with the gather).  Channels without keys (other
    orderings, or too many patterns for ``int16``) fall back to one
    batched :meth:`SimilarityAnalyzer.matrices` call.
    """
    channels = [ch for ch in layout.channels if len(ch) >= 2]
    keyed = getattr(ordering, "accepts_sort_keys", False)
    keys_list = (analyzer.sort_keys_many([ch.wires for ch in channels])
                 if keyed else [None] * len(channels))
    plain = [ch for ch, keys in zip(channels, keys_list) if keys is None]
    sims = iter(analyzer.matrices([ch.wires for ch in plain]) if plain
                else ())
    orders = {}
    cost_before = 0.0
    cost_after = 0.0
    for channel, keys in zip(channels, keys_list):
        if keys is not None:
            order = ordering(None, channel.label, keys)
            cost_before += analyzer.path_dissimilarity(channel.wires)
            cost_after += analyzer.path_dissimilarity(channel.wires, order)
        else:
            weights = 1.0 - next(sims)
            np.fill_diagonal(weights, 0.0)
            order = (ordering(weights, channel.label, None) if keyed
                     else ordering(weights, channel.label))
            cost_before += _path_cost(list(range(len(channel))), weights)
            cost_after += _path_cost(order, weights)
        orders[channel.label] = order
    return layout.apply_ordering(orders), cost_before, cost_after


@dataclasses.dataclass
class FlowResult:
    """Everything the two-stage flow produced."""

    circuit: object
    layout: object              # ordered ChannelLayout
    coupling: object            # CouplingSet (Miller-weighted)
    engine: object              # ElmoreEngine used by stage 2
    problem: object             # SizingProblem
    sizing: object              # SizingResult from OGWS
    ordering_cost_before: float  # Σ (1 − s) over adjacent pairs, initial order
    ordering_cost_after: float   # same after stage 1

    @property
    def ordering_improvement(self):
        """Relative reduction of total effective loading by stage 1."""
        if self.ordering_cost_before <= 0:
            return 0.0
        return 1.0 - self.ordering_cost_after / self.ordering_cost_before


class NoiseAwareSizingFlow:
    """End-to-end noise-constrained sizing.

    Parameters
    ----------
    circuit:
        The circuit to optimize.
    ordering:
        Stage 1 algorithm: ``"woss"`` (paper), ``"greedy2"``, ``"random"``,
        ``"none"``, or a callable ``(weights, label) → permutation``.
    miller_mode:
        Crosstalk weighting (paper default: similarity).
    coupling_order:
        Taylor order k of Eq. 3 (paper default 2).
    delay_mode:
        Where coupling enters delay (paper default ``OWN``).
    n_patterns, seed:
        Logic-simulation workload for similarity analysis.
    problem:
        Explicit :class:`SizingProblem`; default derives Table 1-style
        bounds from the initial sizing via ``bound_factors``.
    bound_factors:
        ``(delay_slack, noise_fraction, power_fraction)`` for
        :meth:`SizingProblem.from_initial`.
    x_init:
        Initial sizes (default: every component at its upper bound, the
        Table 1 "Init" point — see DESIGN.md §3).
    optimizer_options:
        Extra keyword arguments forwarded to :class:`OGWSOptimizer`.
    """

    def __init__(self, circuit, ordering="woss", miller_mode=MillerMode.SIMILARITY,
                 coupling_order=2, delay_mode=CouplingDelayMode.OWN,
                 n_patterns=256, seed=0, pitch=None, problem=None,
                 bound_factors=(1.1, 0.1, 0.2), x_init=None,
                 optimizer_options=None):
        self.circuit = circuit
        #: The ordering's name when one was given (lets a SolverSession
        #: memoize stage 1 across scenarios); ``None`` for callables.
        self.ordering_name = None if callable(ordering) else str(ordering)
        self.ordering = ordering if callable(ordering) else self._named_ordering(ordering)
        self.miller_mode = MillerMode(miller_mode)
        self.coupling_order = int(coupling_order)
        self.delay_mode = CouplingDelayMode(delay_mode)
        self.n_patterns = int(n_patterns)
        self.seed = seed
        self.pitch = pitch
        self.problem = problem
        self.bound_factors = tuple(bound_factors)
        self.x_init = x_init
        self.optimizer_options = dict(optimizer_options or {})

    def _named_ordering(self, name):
        # Validate the name now (construction-time error), but read
        # self.seed lazily at call time: it is assigned after the
        # ordering resolves in __init__.
        if name not in ORDERING_NAMES:
            raise ValidationError(
                f"unknown ordering {name!r}; "
                f"choose from {sorted(ORDERING_NAMES)}")

        def ordering(weights, label, sort_keys=None):
            resolved = resolve_ordering(name, seed=self.seed)
            if getattr(resolved, "accepts_sort_keys", False):
                return resolved(weights, label, sort_keys)
            return resolved(weights, label)

        ordering.accepts_sort_keys = name == "woss"
        return ordering

    # -- stages ---------------------------------------------------------------------

    def order_wires(self, analyzer, layout):
        """Stage 1: per-channel track ordering from switching similarity.

        Returns ``(ordered_layout, cost_before, cost_after)`` where the
        costs are the summed ``1 − similarity`` over adjacent pairs.
        """
        return order_channel_wires(analyzer, layout, self.ordering)

    def run(self, session=None):
        """Execute both stages; returns a :class:`FlowResult`.

        ``session`` optionally reuses an existing
        :class:`~repro.core.session.SolverSession` over this circuit
        (sharing its compiled circuit, similarity, layout, and coupling
        artifacts); by default a fresh one is created, which reproduces
        the historical standalone behavior exactly.
        """
        from repro.core.session import SolverSession

        if session is None:
            session = SolverSession.for_circuit(self.circuit)
        return session.run_flow(self)
