"""Step-size schedules and multiplier update rules (paper Fig. 9, A4).

The paper requires a diminishing, non-summable step sequence
(``μ_k → 0``, ``Σ μ_k = ∞``).  Two update rules are provided:

* :class:`SubgradientUpdate` — the paper's A4 verbatim: additive steps
  proportional to constraint violations.  Violations are normalized by
  their bounds (dimensionless) so one ``μ₀`` works across circuits; this
  is A4 up to a per-constraint rescaling of μ, which the convergence
  conditions allow.
* :class:`MultiplicativeUpdate` — the scale-free variant standard in LR
  sizing practice: ``λ ← λ·ratioᵘ`` with ``ratio = (a_j + D_i)/a_i``
  (``a_j/A0`` on sink edges), ``β ← β·(P(x)/P')ᵘ``, ``γ ← γ·(X(x)/X_B)ᵘ``.
  Ratios are 1 exactly on tight constraints, so fixed points coincide
  with the subgradient rule's; convergence is considerably faster and is
  the library default.  The convergence bench compares both.

Both rules leave multipliers non-negative and are followed by the
Theorem 3 projection (``MultiplierState.project``).
"""

import numpy as np

from repro.utils.errors import ValidationError


class StepSchedule:
    """Base: callable ``k → μ_k`` for iteration k = 1, 2, ..."""

    def __call__(self, k):
        raise NotImplementedError


class HarmonicStep(StepSchedule):
    """``μ_k = μ₀ / k`` — classic diminishing, non-summable sequence."""

    def __init__(self, mu0=1.0):
        if mu0 <= 0:
            raise ValidationError("mu0 must be positive")
        self.mu0 = float(mu0)

    def __call__(self, k):
        return self.mu0 / max(1, k)


class PowerStep(StepSchedule):
    """``μ_k = μ₀ / k^p`` with ``0 < p ≤ 1``.

    Satisfies the paper's conditions for any ``p ≤ 1``; slower decay
    (small p) equilibrates multipliers across deep circuits much faster.
    The library default (p = 0.3, μ₀ = 3) converges the full ISCAS85
    suite, including the 100+-level c6288, within tens of iterations.
    """

    def __init__(self, mu0=3.0, p=0.3):
        if mu0 <= 0:
            raise ValidationError("mu0 must be positive")
        if not 0.0 < p <= 1.0:
            raise ValidationError("p must lie in (0, 1]")
        self.mu0 = float(mu0)
        self.p = float(p)

    def __call__(self, k):
        return self.mu0 / max(1, k) ** self.p


class SqrtStep(StepSchedule):
    """``μ_k = μ₀ / √k`` — slower decay, usually faster in practice."""

    def __init__(self, mu0=1.0):
        if mu0 <= 0:
            raise ValidationError("mu0 must be positive")
        self.mu0 = float(mu0)

    def __call__(self, k):
        return self.mu0 / np.sqrt(max(1, k))


class ConstantStep(StepSchedule):
    """Fixed μ (violates the paper's conditions; for experiments only)."""

    def __init__(self, mu0=0.1):
        if mu0 <= 0:
            raise ValidationError("mu0 must be positive")
        self.mu0 = float(mu0)

    def __call__(self, k):
        return self.mu0


def edge_timing_terms(compiled, arrival, delays, delay_bound):
    """Per-edge arrival constraint terms (paper A4 cases).

    Returns ``(residual, reference)`` arrays over edges:

    * internal edge (j, i):   residual ``a_j + D_i − a_i``, reference ``a_i``
    * driver edge (0, i):     same formula (``a_source = 0``)
    * sink edge (j, m):       residual ``a_j − A0``, reference ``A0``

    ``residual/reference`` is the normalized violation; ``1 + residual/
    reference`` is the multiplicative ratio.
    """
    src, dst = compiled.edge_src, compiled.edge_dst
    residual = arrival[src] + delays[dst] - arrival[dst]
    reference = np.maximum(arrival[dst], 1e-30)
    on_sink = dst == compiled.sink
    residual[on_sink] = arrival[src[on_sink]] - delay_bound
    reference[on_sink] = delay_bound
    return residual, reference


def edge_timing_terms_batch(compiled, arrival, delays, delay_bounds):
    """:func:`edge_timing_terms` over ``(n, K)`` column-stacked matrices.

    ``delay_bounds`` is a ``(K,)`` vector of per-scenario bounds; column
    ``j`` of the returned ``(E, K)`` ``(residual, reference)`` matrices
    is bitwise-identical to the scalar function on that column — the
    same elementwise operations, broadcast across columns.
    """
    src, dst = compiled.edge_src, compiled.edge_dst
    delay_bounds = np.asarray(delay_bounds, dtype=float)
    residual = arrival[src] + delays[dst] - arrival[dst]
    reference = np.maximum(arrival[dst], 1e-30)
    on_sink = dst == compiled.sink
    residual[on_sink] = arrival[src[on_sink]] - delay_bounds[None, :]
    reference[on_sink] = delay_bounds
    return residual, reference


def _schedule_key(schedule):
    """Hashable identity of a builtin schedule, or ``None`` if unknown.

    A subclassed or user-supplied schedule could close over anything, so
    only the builtin types (compared by exact class — their state is all
    constructor floats) participate in batched A4 grouping; everything
    else falls back to scalar ``apply``.
    """
    cls = type(schedule)
    if cls not in (HarmonicStep, PowerStep, SqrtStep, ConstantStep):
        return None
    return (cls.__name__,) + tuple(sorted(vars(schedule).items()))


class SubgradientUpdate:
    """The paper's additive A4 step with bound-normalized violations.

    Steps are additionally scaled by the current mean multiplier (with a
    small floor), i.e. the effective μ₀ adapts to the problem's natural
    multiplier magnitude.  This is still a valid diminishing-step
    subgradient method (the adaptive factor is bounded between the floor
    and the converged scale) and removes the need to hand-tune μ₀ per
    circuit; the convergence bench compares it against the
    multiplicative rule.
    """

    name = "subgradient"

    def __init__(self, schedule=None, scale_floor=1e-4):
        self.schedule = schedule or SqrtStep(1.0)
        if scale_floor <= 0:
            raise ValidationError("scale_floor must be positive")
        self.scale_floor = float(scale_floor)

    def apply(self, multipliers, k, arrival, delays, problem, power_cap, noise,
              engine=None, x=None):
        mu = self.schedule(k)
        cc = multipliers.compiled
        residual, reference = edge_timing_terms(cc, arrival, delays,
                                                problem.delay_bound_ps)
        lam_scale = max(float(np.mean(multipliers.lam_edge)), self.scale_floor)
        multipliers.lam_edge = np.maximum(
            0.0, multipliers.lam_edge + mu * lam_scale * residual / reference)
        beta_scale = max(multipliers.beta, self.scale_floor)
        multipliers.beta = max(
            0.0, multipliers.beta
            + mu * beta_scale * (power_cap / problem.power_cap_bound_ff - 1.0))
        gamma_scale = max(multipliers.gamma, self.scale_floor)
        multipliers.gamma = max(
            0.0, multipliers.gamma
            + mu * gamma_scale * (noise / problem.noise_bound_ff - 1.0))
        return mu

    def batch_key(self):
        """Grouping key for lockstep A4 batching (``None`` ⇒ scalar path).

        Two updates may share one :meth:`apply_batch` call only when the
        per-edge arithmetic they would run is literally identical:
        exact class, same clip/floor constants, and a builtin schedule.
        """
        sched = _schedule_key(self.schedule)
        if type(self) is not SubgradientUpdate or sched is None:
            return None
        return ("subgradient", self.scale_floor, sched)

    def apply_batch(self, multipliers, ks, arrival, delays, problems,
                    power_caps, noises):
        """A4 over K lockstep columns whose updates share :meth:`batch_key`.

        ``arrival``/``delays`` are ``(n, K)`` column stacks; the other
        arguments are per-column sequences.  Column ``j`` is
        bit-identical to :meth:`apply` on optimizer ``j`` alone: the
        edge terms come from :func:`edge_timing_terms_batch`, the mean
        multiplier scales from :func:`~repro.timing.kernels.column_means`
        (both bitwise-equal per column), and the scalar β/γ lines keep
        the scalar spelling.  Returns the per-column step sizes μ.
        """
        from repro.timing import kernels

        cc = multipliers[0].compiled
        mus = [self.schedule(k) for k in ks]
        residual, reference = edge_timing_terms_batch(
            cc, arrival, delays, [p.delay_bound_ps for p in problems])
        lam_cols = type(multipliers[0]).stack_lam(multipliers)
        lam_means = kernels.column_means(lam_cols)
        coef = np.array([mu * max(float(mean), self.scale_floor)
                         for mu, mean in zip(mus, lam_means)])
        lam_new = np.maximum(0.0, lam_cols + coef[None, :] * residual
                             / reference)
        type(multipliers[0]).unstack_lam(multipliers, lam_new)
        for j, (m, mu, problem) in enumerate(zip(multipliers, mus, problems)):
            beta_scale = max(m.beta, self.scale_floor)
            m.beta = max(
                0.0, m.beta + mu * beta_scale
                * (power_caps[j] / problem.power_cap_bound_ff - 1.0))
            gamma_scale = max(m.gamma, self.scale_floor)
            m.gamma = max(
                0.0, m.gamma + mu * gamma_scale
                * (noises[j] / problem.noise_bound_ff - 1.0))
        return mus


class MultiplicativeUpdate:
    """Scale-free ratio update (library default; see module docstring)."""

    name = "multiplicative"

    def __init__(self, schedule=None, ratio_clip=4.0):
        self.schedule = schedule or PowerStep()
        if ratio_clip <= 1.0:
            raise ValidationError("ratio_clip must exceed 1")
        self.ratio_clip = float(ratio_clip)

    def apply(self, multipliers, k, arrival, delays, problem, power_cap, noise,
              engine=None, x=None):
        mu = self.schedule(k)
        cc = multipliers.compiled
        residual, reference = edge_timing_terms(cc, arrival, delays,
                                                problem.delay_bound_ps)
        ratio = np.clip(1.0 + residual / reference, 1.0 / self.ratio_clip,
                        self.ratio_clip)
        multipliers.lam_edge = multipliers.lam_edge * ratio ** mu
        multipliers.beta *= min(self.ratio_clip, max(
            1.0 / self.ratio_clip, power_cap / problem.power_cap_bound_ff)) ** mu
        multipliers.gamma *= min(self.ratio_clip, max(
            1.0 / self.ratio_clip, noise / problem.noise_bound_ff)) ** mu
        return mu

    def batch_key(self):
        """Grouping key for lockstep A4 batching (``None`` ⇒ scalar path).

        See :meth:`SubgradientUpdate.batch_key` — exact class, same
        clip constant, builtin schedule.
        """
        sched = _schedule_key(self.schedule)
        if type(self) is not MultiplicativeUpdate or sched is None:
            return None
        return ("multiplicative", self.ratio_clip, sched)

    def apply_batch(self, multipliers, ks, arrival, delays, problems,
                    power_caps, noises):
        """A4 over K lockstep columns whose updates share :meth:`batch_key`.

        Same contract as :meth:`SubgradientUpdate.apply_batch`: one
        :func:`edge_timing_terms_batch` call and one broadcast
        clip/power/multiply replace K per-column edge passes, column
        ``j`` bit-identical to :meth:`apply` (``ratio ** μ`` with a
        broadcast per-column exponent runs the same elementwise ``pow``).
        Returns the per-column step sizes μ.
        """
        cc = multipliers[0].compiled
        mus = [self.schedule(k) for k in ks]
        residual, reference = edge_timing_terms_batch(
            cc, arrival, delays, [p.delay_bound_ps for p in problems])
        ratio = np.clip(1.0 + residual / reference, 1.0 / self.ratio_clip,
                        self.ratio_clip)
        lam_cols = type(multipliers[0]).stack_lam(multipliers)
        lam_new = lam_cols * ratio ** np.array(mus)[None, :]
        type(multipliers[0]).unstack_lam(multipliers, lam_new)
        for j, (m, mu, problem) in enumerate(zip(multipliers, mus, problems)):
            m.beta *= min(self.ratio_clip, max(
                1.0 / self.ratio_clip,
                power_caps[j] / problem.power_cap_bound_ff)) ** mu
            m.gamma *= min(self.ratio_clip, max(
                1.0 / self.ratio_clip,
                noises[j] / problem.noise_bound_ff)) ** mu
        return mus
