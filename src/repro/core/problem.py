"""Problem formulation (paper Sec. 4.1).

The optimization problem ``PP``:

    minimize    Σ α_i·x_i                                   (area)
    subject to  arrival(po) ≤ A0        for every primary output
                Σ c_i(x) ≤ P' = P_B/(V²·f)                  (power, in fF)
                X(x) = Σ w_ij·c_ij(x) ≤ X_B                 (crosstalk, fF)
                L_i ≤ x_i ≤ U_i

:class:`SizingProblem` stores the three bounds in the engine's native
units (ps / fF / fF) plus reporting conversions, and evaluates
feasibility.  :meth:`SizingProblem.from_initial` reverse-engineers the
paper's Table 1 setup: bounds proportional to the metrics of the initial
sizing (DESIGN.md §3).
"""

import dataclasses

from repro.timing.metrics import evaluate_metrics
from repro.utils.errors import ValidationError
from repro.utils.units import FF_PER_PF, MW_PER_W


@dataclasses.dataclass(frozen=True)
class SizingProblem:
    """Bounds of problem ``PP`` in engine units.

    Attributes
    ----------
    delay_bound_ps:
        ``A0`` — the arrival-time bound at every primary output (ps).
    noise_bound_ff:
        ``X_B`` — bound on total Miller-weighted coupling (fF).
    power_cap_bound_ff:
        ``P'`` — the power bound already divided by ``V²·f`` (fF).
    """

    delay_bound_ps: float
    noise_bound_ff: float
    power_cap_bound_ff: float

    def __post_init__(self):
        for name in ("delay_bound_ps", "noise_bound_ff", "power_cap_bound_ff"):
            if getattr(self, name) <= 0:
                raise ValidationError(f"SizingProblem.{name} must be positive")

    @classmethod
    def from_initial(cls, engine, x_init, delay_slack=1.1, noise_fraction=0.1,
                     power_fraction=0.2, metrics=None):
        """Bounds proportional to the initial solution's metrics.

        Reverse-engineered from Table 1 (final noise is exactly 10% of
        initial on every row; delay occasionally ends slightly above
        initial, so the bound sits above it; power binds loosely):

        * ``A0   = delay_slack    · delay(x_init)``
        * ``X_B  = noise_fraction · X(x_init)``
        * ``P'   = power_fraction · Σc(x_init)``

        ``metrics`` optionally supplies precomputed metrics at
        ``x_init`` (a :class:`SolverSession` evaluates them once per
        engine group instead of once per scenario).
        """
        if delay_slack <= 0 or noise_fraction <= 0 or power_fraction <= 0:
            raise ValidationError("bound factors must be positive")
        if metrics is None:
            metrics = evaluate_metrics(engine, x_init)
        noise_init_ff = metrics.noise_pf * FF_PER_PF
        return cls(
            delay_bound_ps=delay_slack * metrics.delay_ps,
            # Circuits with no coupling pairs have zero initial noise;
            # the crosstalk constraint is then vacuous (bound = inf).
            noise_bound_ff=noise_fraction * noise_init_ff
            if noise_init_ff > 0 else float("inf"),
            power_cap_bound_ff=power_fraction * metrics.total_cap_ff,
        )

    @classmethod
    def from_physical(cls, tech, delay_bound_ps, noise_bound_pf, power_bound_mw):
        """Bounds in the paper's reporting units (ps / pF / mW)."""
        v2f = tech.supply_voltage ** 2 * tech.clock_frequency
        return cls(
            delay_bound_ps=delay_bound_ps,
            noise_bound_ff=noise_bound_pf * FF_PER_PF,
            power_cap_bound_ff=(power_bound_mw / MW_PER_W) / v2f / 1e-15,
        )

    # -- feasibility --------------------------------------------------------------

    def violations(self, metrics):
        """Relative constraint violations at ``metrics`` (≤ 0 ⇒ satisfied).

        Returned dict maps constraint name → ``value/bound − 1``.
        """
        return {
            "delay": metrics.delay_ps / self.delay_bound_ps - 1.0,
            "noise": metrics.noise_pf * FF_PER_PF / self.noise_bound_ff - 1.0,
            "power": metrics.total_cap_ff / self.power_cap_bound_ff - 1.0,
        }

    def is_feasible(self, metrics, tolerance=1e-6):
        """Whether every constraint holds within relative ``tolerance``."""
        return all(v <= tolerance for v in self.violations(metrics).values())

    def __repr__(self):
        return (
            f"SizingProblem(A0={self.delay_bound_ps:.1f} ps, "
            f"X_B={self.noise_bound_ff / FF_PER_PF:.3f} pF, "
            f"P'={self.power_cap_bound_ff:.1f} fF)"
        )
