"""The paper's core contribution: noise-constrained LR sizing.

* :class:`~repro.core.problem.SizingProblem` — problem ``PP`` bounds,
* :class:`~repro.core.multipliers.MultiplierState` — edge/β/γ multipliers
  with the Theorem 3 flow projection,
* :class:`~repro.core.lrs.LagrangianSubproblemSolver` — Fig. 8 / Thm 5,
* :class:`~repro.core.ogws.OGWSOptimizer` — Fig. 9 outer loop,
* :func:`~repro.core.kkt.check_kkt` — Theorem 6 certificate,
* :class:`~repro.core.flow.NoiseAwareSizingFlow` — the two-stage flow.
"""

from repro.core.distributed import (
    DistributedMultiplicativeUpdate,
    DistributedNoiseOGWS,
    DistributedSizingProblem,
    initial_distributed_multipliers,
)
from repro.core.flow import FlowResult, NoiseAwareSizingFlow
from repro.core.kkt import KKTReport, check_kkt
from repro.core.lrs import LagrangianSubproblemSolver, LRSResult
from repro.core.multipliers import MultiplierState
from repro.core.ogws import OGWSOptimizer, run_lockstep
from repro.core.problem import SizingProblem
from repro.core.result import IterationRecord, SizingResult
from repro.core.session import ScenarioBatch, SessionPool, SolverSession
from repro.core.subgradient import (
    ConstantStep,
    HarmonicStep,
    MultiplicativeUpdate,
    PowerStep,
    SqrtStep,
    SubgradientUpdate,
)

__all__ = [
    "SizingProblem",
    "DistributedSizingProblem",
    "DistributedNoiseOGWS",
    "DistributedMultiplicativeUpdate",
    "initial_distributed_multipliers",
    "MultiplierState",
    "LagrangianSubproblemSolver",
    "LRSResult",
    "OGWSOptimizer",
    "run_lockstep",
    "SolverSession",
    "ScenarioBatch",
    "SessionPool",
    "SizingResult",
    "IterationRecord",
    "KKTReport",
    "check_kkt",
    "NoiseAwareSizingFlow",
    "FlowResult",
    "HarmonicStep",
    "PowerStep",
    "SqrtStep",
    "ConstantStep",
    "MultiplicativeUpdate",
    "SubgradientUpdate",
]
