"""Compile-once, solve-many: per-circuit solver sessions.

A sweep over scenarios sharing one circuit — same topology, same
coupling structure, different bounds / orderings / delay modes — used to
rebuild everything per scenario: the circuit graph, its compiled form
and precompiled :class:`~repro.timing.kernels.SweepPlan`, the logic
simulation behind similarity analysis, the channel layout, the stage-1
ordering, and the Miller-weighted coupling set.  :class:`SolverSession`
owns all of those artifacts for **one** :class:`CircuitRef` (or live
circuit) and memoizes each by the configuration knobs that actually
determine it, so K scenarios pay the per-circuit compilation once.

On top of the shared artifacts, :class:`ScenarioBatch` vectorizes the
solve itself: scenarios that share an *engine* (ordering × Miller mode ×
coupling order × delay mode × simulation workload) but differ in bounds
or solver options advance through :func:`repro.core.ogws.run_lockstep`
in lockstep — one batched LRS solve, delay/arrival sweep, and Theorem 3
projection per outer iteration, with per-column convergence masking.
The batched kernels replay the scalar arithmetic bit-for-bit per column
(see :mod:`repro.timing.kernels`), so ``SolverSession.solve`` returns
:class:`~repro.runtime.records.RunRecord`\\ s **byte-identical** to K
independent :func:`repro.runtime.runner.run_scenario` executions — the
property the batch-equivalence tests pin.

:class:`SessionPool` keeps sessions *warm across work units*: a small
LRU of sessions keyed by the :class:`~repro.runtime.config.CircuitRef`
content hash, shared by the serial :class:`~repro.runtime.runner.BatchRunner`
path and the queue :class:`~repro.runtime.worker.Worker` — consecutive
same-circuit shards skip the build/compile/similarity/ordering work
entirely instead of paying it once per shard.

Concurrency contract
--------------------
Sessions and pools are **single-thread, single-process owned**: the
kernel :class:`~repro.timing.kernels.Workspace` buffers a session holds
are mutated in place during every solve, so a session must only ever be
driven by the thread that created it.  A :class:`SessionPool` inherits
that ownership — it is a per-worker (per-process) object, never shared
between threads; parallel sweeps run one pool per worker process.
Reuse is *observationally pure*: every memoized artifact is a
deterministic function of its key, so records produced through a warm
session are byte-identical to a cold rebuild (pinned by test).

:class:`~repro.core.flow.NoiseAwareSizingFlow` is the K = 1 wrapper over
this module; :class:`~repro.runtime.runner.BatchRunner` is the layer
above, partitioning whole sweeps into per-circuit sessions.
"""

import collections
import hashlib
import json
import pathlib

import numpy as np

from repro.core.flow import FlowResult, order_channel_wires, resolve_ordering
from repro.core.ogws import OGWSOptimizer, run_lockstep
from repro.core.problem import SizingProblem
from repro.geometry.layout import ChannelLayout
from repro.noise.crosstalk import CouplingSet
from repro.noise.miller import MillerMode
from repro.noise.similarity import SimilarityAnalyzer
from repro.timing.elmore import CouplingDelayMode, ElmoreEngine
from repro.timing.metrics import evaluate_metrics
from repro.utils.errors import ValidationError


class SolverSession:
    """Solver context bound to one circuit: build once, solve many.

    Construct via :meth:`for_ref` (a declarative
    :class:`~repro.runtime.config.CircuitRef`) or :meth:`for_circuit`
    (a live circuit object).  Artifacts — the built circuit, its
    compiled form, similarity analyzers, layouts, stage-1 orderings,
    coupling sets, and delay engines — are created lazily and memoized
    by the knobs that determine them, so any number of scenarios (or
    repeated :meth:`run_flow` calls) share them.

    Sessions are single-threaded, like the kernel workspaces they own;
    parallel sweeps run one session per worker process
    (:func:`repro.runtime.runner.run_scenario_group`).
    """

    def __init__(self, circuit=None, ref=None):
        if circuit is None and ref is None:
            raise ValidationError("SolverSession needs a circuit or a ref")
        self.ref = ref
        self._circuit = circuit
        self._compiled = None
        self._fingerprint = None
        self._analyzers = {}
        self._layouts = {}
        self._orderings = {}     # stage-1 results
        self._couplings = {}
        self._engines = {}
        self._initials = {}      # engine key -> (x_init, CircuitMetrics)
        self._batch_ws = None
        self._num_gates = None
        self._partitions = {}    # (k, seed) -> (PartitionPlan, region sessions)

    @classmethod
    def for_ref(cls, ref):
        """A session over a declarative ``CircuitRef`` (built lazily)."""
        return cls(ref=ref)

    @classmethod
    def for_circuit(cls, circuit):
        """A session over an already-built circuit object."""
        return cls(circuit=circuit)

    # -- shared artifacts --------------------------------------------------------

    @property
    def circuit(self):
        if self._circuit is None:
            self._circuit = self.ref.build()
        return self._circuit

    @property
    def compiled(self):
        if self._compiled is None:
            self._compiled = self.circuit.compile()
        return self._compiled

    def fingerprint(self):
        """SHA-256 of the realized circuit (cache bookkeeping)."""
        if self._fingerprint is None:
            from repro.runtime.config import circuit_fingerprint

            self._fingerprint = circuit_fingerprint(self.circuit)
        return self._fingerprint

    def analyzer(self, n_patterns, seed):
        """Memoized :class:`SimilarityAnalyzer` for one simulation workload."""
        key = (int(n_patterns), seed)
        value = self._analyzers.get(key)
        if value is None:
            value = self._analyzers[key] = SimilarityAnalyzer(
                self.circuit, n_patterns=n_patterns, seed=seed)
        return value

    def base_layout(self, pitch=None):
        """Memoized unordered :class:`ChannelLayout`."""
        value = self._layouts.get(pitch)
        if value is None:
            value = self._layouts[pitch] = ChannelLayout.from_levels(
                self.circuit, pitch=pitch)
        return value

    def stage1(self, ordering, n_patterns, seed, pitch=None):
        """Memoized stage-1 result ``(ordered_layout, cost_before, cost_after)``.

        ``ordering`` is a name from
        :data:`~repro.core.flow.ORDERING_NAMES` (memoized) or a callable
        (computed fresh — callables have no stable identity to key on).
        """
        named = isinstance(ordering, str)
        key = (ordering, int(n_patterns), seed, pitch) if named else None
        if named and key in self._orderings:
            return self._orderings[key]
        fn = resolve_ordering(ordering, seed=seed) if named else ordering
        result = order_channel_wires(self.analyzer(n_patterns, seed),
                                     self.base_layout(pitch), fn)
        if named:
            self._orderings[key] = result
        return result

    def coupling(self, ordering, n_patterns, seed, miller_mode,
                 coupling_order, pitch=None):
        """Memoized Miller-weighted :class:`CouplingSet` for an ordered layout."""
        miller_mode = MillerMode(miller_mode)
        named = isinstance(ordering, str)
        key = (ordering, int(n_patterns), seed, miller_mode.value,
               int(coupling_order), pitch) if named else None
        if named and key in self._couplings:
            return self._couplings[key]
        ordered, _, _ = self.stage1(ordering, n_patterns, seed, pitch)
        value = CouplingSet.from_layout(ordered,
                                        self.analyzer(n_patterns, seed),
                                        miller_mode, order=coupling_order)
        if named:
            self._couplings[key] = value
        return value

    def engine(self, ordering, n_patterns, seed, miller_mode, coupling_order,
               delay_mode, pitch=None):
        """Memoized :class:`ElmoreEngine` (kernel backend) for one config."""
        delay_mode = CouplingDelayMode(delay_mode)
        named = isinstance(ordering, str)
        key = (ordering, int(n_patterns), seed, MillerMode(miller_mode).value,
               int(coupling_order), delay_mode.value, pitch) if named else None
        if named and key in self._engines:
            return self._engines[key]
        value = ElmoreEngine(
            self.compiled,
            self.coupling(ordering, n_patterns, seed, miller_mode,
                          coupling_order, pitch),
            delay_mode)
        if named:
            self._engines[key] = value
        return value

    def initial_point(self, engine, key=None):
        """``(x_init, metrics)`` at the Table 1 "Init" sizing for ``engine``.

        Memoized per engine key so a scenario group evaluates the
        initial metrics once instead of once per scenario (the values
        are identical either way — same engine, same point).
        """
        if key is not None and key in self._initials:
            return self._initials[key]
        x_init = self.compiled.default_sizes(np.inf)
        value = (x_init, evaluate_metrics(engine, x_init))
        if key is not None:
            self._initials[key] = value
        return value

    @property
    def num_gates(self):
        """Gate count of the session's circuit (partition routing key)."""
        if self._num_gates is None:
            self._num_gates = sum(1 for n in self.circuit.nodes if n.is_gate)
        return self._num_gates

    def partition_artifacts(self, k, seed):
        """Memoized ``(PartitionPlan, region sessions)`` for one split.

        Region sessions are full :class:`SolverSession` objects over the
        region sub-circuits, so the partitioned path reuses the same
        memoization (stage 1, coupling, engines) across scenarios that
        share a split.  Keyed by ``(k, seed)``; the plan itself is
        deterministic in the circuit content (see
        :meth:`~repro.core.partition.PartitionPlan.signature`).
        """
        from repro.core.partition import partition_circuit

        key = (int(k), seed)
        value = self._partitions.get(key)
        if value is None:
            plan = partition_circuit(self.circuit, k, seed=seed)
            value = (plan, [SolverSession.for_circuit(region.circuit)
                            for region in plan.regions])
            self._partitions[key] = value
        return value

    def batch_workspace(self):
        """The session's pooled batched kernel workspace (lazily built)."""
        if self._batch_ws is None:
            from repro.timing import kernels

            self._batch_ws = kernels.BatchWorkspace(
                self.compiled.sweep_plan())
        return self._batch_ws

    # -- the K = 1 path (NoiseAwareSizingFlow) -----------------------------------

    def run_flow(self, flow):
        """Execute a :class:`~repro.core.flow.NoiseAwareSizingFlow` here.

        This *is* the two-stage flow's implementation — ``flow.run()``
        delegates to it — expressed against the session's memoized
        artifacts so repeated runs on one session skip re-analysis.
        """
        from repro.core.flow import NoiseAwareSizingFlow

        if flow.circuit is not self.circuit:
            raise ValidationError("flow and session bind different circuits")
        if type(flow).order_wires is not NoiseAwareSizingFlow.order_wires:
            # Subclass stage-1 hook: honor the override (unmemoized — an
            # override has no stable identity to key artifacts on).
            analyzer = self.analyzer(flow.n_patterns, flow.seed)
            ordered, cost_before, cost_after = flow.order_wires(
                analyzer, self.base_layout(flow.pitch))
            coupling = CouplingSet.from_layout(ordered, analyzer,
                                               flow.miller_mode,
                                               order=flow.coupling_order)
            engine = ElmoreEngine(self.compiled, coupling, flow.delay_mode)
        else:
            ordering = flow.ordering_name if flow.ordering_name is not None \
                else flow.ordering
            ordered, cost_before, cost_after = self.stage1(
                ordering, flow.n_patterns, flow.seed, flow.pitch)
            coupling = self.coupling(ordering, flow.n_patterns, flow.seed,
                                     flow.miller_mode, flow.coupling_order,
                                     flow.pitch)
            engine = self.engine(ordering, flow.n_patterns, flow.seed,
                                 flow.miller_mode, flow.coupling_order,
                                 flow.delay_mode, flow.pitch)
        compiled = self.compiled
        x_init = compiled.default_sizes(np.inf) if flow.x_init is None \
            else flow.x_init
        problem = flow.problem
        if problem is None:
            slack, noise_frac, power_frac = flow.bound_factors
            problem = SizingProblem.from_initial(
                engine, x_init, delay_slack=slack, noise_fraction=noise_frac,
                power_fraction=power_frac)
        optimizer = OGWSOptimizer(engine, problem, x_init=x_init,
                                  **flow.optimizer_options)
        sizing = optimizer.run()
        return FlowResult(
            circuit=self.circuit,
            layout=ordered,
            coupling=coupling,
            engine=engine,
            problem=problem,
            sizing=sizing,
            ordering_cost_before=cost_before,
            ordering_cost_after=cost_after,
        )

    # -- the scenario path (ScenarioBatch) ---------------------------------------

    @staticmethod
    def _engine_key(config):
        """The knobs that determine a scenario's engine (its batch group)."""
        return (config.ordering, int(config.n_patterns), int(config.seed),
                config.miller_mode, int(config.coupling_order),
                config.delay_mode)

    def solve(self, scenarios, batch=True):
        """Run scenarios over this circuit; returns records in input order.

        Scenarios are grouped by engine key; each group of ≥ 2 becomes a
        :class:`ScenarioBatch` advancing in lockstep (``batch=False``
        forces the scalar per-scenario loop everywhere).  Records are
        byte-identical to independent per-scenario runs either way.
        """
        scenarios = list(scenarios)
        if scenarios and self.ref is None:
            # A for_circuit session has no ref to compare against; adopt
            # the scenarios' (single) ref after checking it realizes the
            # session's circuit — one extra build, once per session.
            refs = {scenario.circuit for scenario in scenarios}
            if len(refs) > 1:
                raise ValidationError(
                    "scenarios bind different circuits; one session per "
                    "circuit")
            candidate = next(iter(refs))
            if candidate.fingerprint() != self.fingerprint():
                raise ValidationError(
                    "scenario circuit does not match this session's circuit")
            self.ref = candidate
        if self.ref is not None:
            for scenario in scenarios:
                if scenario.circuit != self.ref:
                    raise ValidationError(
                        f"scenario {scenario.label!r} references a different "
                        "circuit than this session")
        from repro.core.partitioned import resolve_partitions, run_partitioned

        records = [None] * len(scenarios)
        groups = {}
        for index, scenario in enumerate(scenarios):
            config = scenario.config
            k = 1
            if int(config.partitions) != 1 \
                    and int(config.partition_threshold) > 0:
                k = resolve_partitions(config.partitions,
                                       config.partition_threshold,
                                       self.num_gates)
            if k >= 2:
                # Oversized circuits take the region-decomposed path;
                # partitioned scenarios never join a lockstep batch
                # (each drives K region sessions of its own).
                records[index] = run_partitioned(self, scenario, k)
            else:
                groups.setdefault(self._engine_key(config),
                                  []).append((index, scenario))
        for members in groups.values():
            batch_records = ScenarioBatch(
                self, [s for _, s in members]).run(batch=batch)
            for (index, _), record in zip(members, batch_records):
                records[index] = record
        return records


class ScenarioBatch:
    """K scenarios sharing one session *and* one engine configuration.

    The scenarios must agree on every engine-determining knob (see
    ``SolverSession._engine_key``); they may differ in bounds
    (``delay_slack`` / ``noise_fraction`` / ``power_fraction``) and
    solver options (``max_iterations`` / ``tolerance`` / ``update``),
    which become per-column state in the lockstep run.

    Lockstep batches are chunked at :attr:`LOCKSTEP_WIDTH` columns:
    workspace memory scales with the widths the shrinking batch visits,
    so an uncapped 100-scenario group on a large circuit would pool
    gigabytes of buffers, while chunks keep it bounded (and the circuit
    artifacts are shared across chunks regardless).
    """

    #: Maximum columns advanced in one lockstep batch.
    LOCKSTEP_WIDTH = 16

    def __init__(self, session, scenarios):
        if not scenarios:
            raise ValidationError("ScenarioBatch needs at least one scenario")
        keys = {SolverSession._engine_key(s.config) for s in scenarios}
        if len(keys) > 1:
            raise ValidationError(
                "ScenarioBatch scenarios must share one engine configuration")
        self.session = session
        self.scenarios = scenarios

    def run(self, batch=True):
        """Execute the batch; returns one ``RunRecord`` per scenario.

        ``batch=True`` advances all scenarios in lockstep through the
        batched kernels; ``batch=False`` runs the scalar per-scenario
        loop.  Both produce byte-identical records.
        """
        from repro.runtime.records import RunRecord

        session = self.session
        config0 = self.scenarios[0].config
        seed = self.scenarios[0].seed   # same circuit + config.seed => shared
        key = SolverSession._engine_key(config0)
        engine = session.engine(config0.ordering, config0.n_patterns, seed,
                                config0.miller_mode, config0.coupling_order,
                                config0.delay_mode)
        _, cost_before, cost_after = session.stage1(
            config0.ordering, config0.n_patterns, seed)
        x_init, initial_metrics = session.initial_point(engine, key=key)

        optimizers = []
        for scenario in self.scenarios:
            config = scenario.config
            problem = SizingProblem.from_initial(
                engine, x_init, delay_slack=config.delay_slack,
                noise_fraction=config.noise_fraction,
                power_fraction=config.power_fraction,
                metrics=initial_metrics)
            optimizers.append(OGWSOptimizer(
                engine, problem, x_init=x_init,
                initial_metrics=initial_metrics,
                max_iterations=config.max_iterations,
                tolerance=config.tolerance, update=config.update))

        if batch and len(optimizers) > 1:
            width = max(2, int(self.LOCKSTEP_WIDTH))
            sizings = []
            for lo in range(0, len(optimizers), width):
                sizings.extend(run_lockstep(optimizers[lo:lo + width],
                                            batch=session.batch_workspace()))
        else:
            sizings = [optimizer.run() for optimizer in optimizers]

        fingerprint = session.fingerprint()
        records = []
        for scenario, sizing in zip(self.scenarios, sizings):
            records.append(RunRecord(
                scenario=scenario,
                feasible=bool(sizing.feasible),
                converged=bool(sizing.converged),
                iterations=int(sizing.iterations),
                duality_gap=float(sizing.duality_gap),
                ordering_cost_before=float(cost_before),
                ordering_cost_after=float(cost_after),
                initial_metrics=sizing.initial_metrics,
                metrics=sizing.metrics,
                sizes=tuple(float(x) for x in sizing.x),
                diagnostics={"repair_evals": int(sizing.repair_evals)},
                # Telemetry (excluded from the canonical record; in a
                # lockstep batch each column's clock spans the batch).
                runtime_s=float(sizing.runtime_s),
                memory_bytes=int(sizing.memory_bytes),
                fingerprint=fingerprint,
            ))
        return records


class SessionPool:
    """A bounded LRU of warm :class:`SolverSession`\\ s, keyed by circuit.

    The amortization unit above the session: a session amortizes
    per-circuit analysis across the scenarios of *one* work unit, the
    pool amortizes the session itself across *consecutive* work units —
    a queue worker draining twenty same-circuit shards (or a runner
    re-running a sweep in-process) builds the circuit once, not twenty
    times.  Keys are the SHA-256 of the
    :class:`~repro.runtime.config.CircuitRef`'s canonical dict, so two
    refs describing the same circuit source share one session no matter
    which process serialized them.

    Thread ownership: a pool (and every session it holds) belongs to
    exactly one thread — see the module docstring.  Capacity bounds the
    resident sessions (kernel workspaces scale with circuit size);
    eviction is least-recently-used and simply drops the session for
    garbage collection, losing nothing but warmth.
    """

    def __init__(self, capacity=4):
        if int(capacity) < 1:
            raise ValidationError("SessionPool capacity must be >= 1")
        self.capacity = int(capacity)
        self._sessions = collections.OrderedDict()
        #: Reuse accounting for the pool's lifetime.
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _key(ref):
        canonical = json.dumps(ref.canonical_dict(), sort_keys=True,
                               separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode())
        if ref.kind == "bench":
            # A .bench ref's canonical dict pins the *path*, not the
            # netlist bytes — and a long-lived pool can outlive an
            # in-place edit of the file.  Fold the current content into
            # the key so an edited netlist is a pool miss (fresh
            # session), never a stale hit on the old circuit.
            try:
                digest.update(pathlib.Path(ref.path).read_bytes())
            except OSError:
                pass
        return digest.hexdigest()

    def session(self, ref):
        """The warm session for ``ref``, building (and caching) on miss."""
        key = self._key(ref)
        session = self._sessions.get(key)
        if session is not None:
            self.hits += 1
            self._sessions.move_to_end(key)
            return session
        self.misses += 1
        session = SolverSession.for_ref(ref)
        self._sessions[key] = session
        while len(self._sessions) > self.capacity:
            self._sessions.popitem(last=False)
            self.evictions += 1
        return session

    def __len__(self):
        return len(self._sessions)

    def __contains__(self, ref):
        return self._key(ref) in self._sessions

    def clear(self):
        """Drop every resident session (counters keep accumulating)."""
        self._sessions.clear()
