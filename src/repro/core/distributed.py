"""Distributed per-net crosstalk bounds (paper Sec. 4.1 extension).

The paper notes: "though not presented here, the above crosstalk
constraint can easily be extended to the case with a distributed
crosstalk bound on each net".  This module is that extension:

    Σ_{j ∈ I(i)} w_ij·c_ij(x) ≤ X_B,i    for every wire i owning pairs

with one Lagrange multiplier ``γ_i`` per constrained net.  The Theorem 5
closed form generalizes directly — each pair's slope enters its two
endpoints' denominators weighted by the *owning* net's multiplier
(:meth:`CouplingSet.slope_sums`), and the LRS/OGWS machinery is reused
unchanged: :class:`DistributedSizingProblem` carries the per-net bounds
and :class:`DistributedMultiplicativeUpdate` steps the γ vector.

A distributed bound is strictly stronger than the global one with the
same total: it protects every individual victim net rather than the sum,
which is what a real noise sign-off requires.
"""

import dataclasses

import numpy as np

from repro.core.multipliers import MultiplierState
from repro.core.ogws import OGWSOptimizer
from repro.core.subgradient import MultiplicativeUpdate
from repro.timing.metrics import evaluate_metrics
from repro.utils.errors import ValidationError
from repro.utils.units import FF_PER_PF


@dataclasses.dataclass(frozen=True)
class DistributedSizingProblem:
    """Problem ``PP`` with a crosstalk bound per net.

    ``noise_bounds_ff`` has one entry per *node*; entries are the bound
    on the crosstalk owned by that wire (``Σ_{j∈I(i)} c_ij``), and
    ``+inf`` for nodes owning no constrained pairs.  The aggregate
    ``noise_bound_ff`` (sum of finite bounds) is exposed so scalar-bound
    consumers (reports, the γ-free baselines) keep working.
    """

    delay_bound_ps: float
    power_cap_bound_ff: float
    noise_bounds_ff: np.ndarray

    def __post_init__(self):
        if self.delay_bound_ps <= 0 or self.power_cap_bound_ff <= 0:
            raise ValidationError("delay/power bounds must be positive")
        bounds = np.asarray(self.noise_bounds_ff, dtype=float)
        if np.any(bounds <= 0):
            raise ValidationError(
                "per-net noise bounds must be positive (use inf to disable)")
        object.__setattr__(self, "noise_bounds_ff", bounds)

    @classmethod
    def from_initial(cls, engine, x_init, delay_slack=1.1, noise_fraction=0.1,
                     power_fraction=0.2):
        """Per-net analogue of :meth:`SizingProblem.from_initial`.

        Each constrained net's bound is ``noise_fraction`` of the noise
        it owns at the initial sizing.
        """
        metrics = evaluate_metrics(engine, x_init)
        owned = engine.coupling.net_caps(x_init)
        bounds = np.full(engine.compiled.num_nodes, np.inf)
        active = owned > 0.0
        bounds[active] = noise_fraction * owned[active]
        return cls(
            delay_bound_ps=delay_slack * metrics.delay_ps,
            power_cap_bound_ff=power_fraction * metrics.total_cap_ff,
            noise_bounds_ff=bounds,
        )

    # -- scalar-compatible surface -------------------------------------------------

    @property
    def noise_bound_ff(self):
        """Aggregate bound (sum of finite per-net bounds) for reporting."""
        finite = np.isfinite(self.noise_bounds_ff)
        return float(np.sum(self.noise_bounds_ff[finite]))

    def violations(self, metrics):
        """Aggregate relative violations (delay/power exact; noise is the
        total against the summed bound — per-net checks need ``x``)."""
        return {
            "delay": metrics.delay_ps / self.delay_bound_ps - 1.0,
            "noise": metrics.noise_pf * FF_PER_PF / self.noise_bound_ff - 1.0,
            "power": metrics.total_cap_ff / self.power_cap_bound_ff - 1.0,
        }

    def is_feasible(self, metrics, tolerance=1e-6):
        return all(v <= tolerance for v in self.violations(metrics).values())

    # -- the real (per-net) feasibility --------------------------------------------

    def net_violations(self, engine, x):
        """Per-node relative violations ``X_i/X_B,i − 1`` (−inf where
        unconstrained)."""
        owned = engine.coupling.net_caps(x)
        with np.errstate(invalid="ignore"):
            out = owned / self.noise_bounds_ff - 1.0
        out[~np.isfinite(self.noise_bounds_ff)] = -np.inf
        return out

    def is_feasible_at(self, engine, x, metrics=None, tolerance=1e-6):
        """True iff delay, power, and *every* per-net bound hold."""
        metrics = metrics if metrics is not None else evaluate_metrics(engine, x)
        if metrics.delay_ps > self.delay_bound_ps * (1 + tolerance):
            return False
        if metrics.total_cap_ff > self.power_cap_bound_ff * (1 + tolerance):
            return False
        worst = float(np.max(self.net_violations(engine, x), initial=-np.inf))
        return worst <= tolerance

    def __repr__(self):
        finite = np.isfinite(self.noise_bounds_ff)
        return (
            f"DistributedSizingProblem(A0={self.delay_bound_ps:.1f} ps, "
            f"nets={int(finite.sum())}, P'={self.power_cap_bound_ff:.1f} fF)"
        )


class DistributedMultiplicativeUpdate(MultiplicativeUpdate):
    """Multiplicative rule with a per-net γ vector.

    λ and β step exactly as in the scalar rule; γ_i steps by the owning
    net's ratio ``X_i(x)/X_B,i`` (clipped).
    """

    name = "distributed-multiplicative"

    def apply(self, multipliers, k, arrival, delays, problem, power_cap, noise,
              engine=None, x=None):
        if engine is None or x is None:
            raise ValidationError(
                "distributed update needs engine and x (per-net crosstalk)")
        if np.ndim(multipliers.gamma) == 0:
            raise ValidationError(
                "multipliers.gamma must be a per-node array; initialize with "
                "initial_distributed_multipliers()")
        gamma = np.array(multipliers.gamma, copy=True)  # parent's *= is in-place
        mu = super().apply(multipliers, k, arrival, delays, problem,
                           power_cap=power_cap, noise=noise)
        # Discard the scalar γ step the parent applied to the array (it
        # multiplied by the aggregate ratio); recompute per net instead.
        multipliers.gamma = gamma
        owned = engine.coupling.net_caps(x)
        bounds = problem.noise_bounds_ff
        active = np.isfinite(bounds)
        ratio = np.ones_like(owned)
        ratio[active] = np.clip(owned[active] / bounds[active],
                                1.0 / self.ratio_clip, self.ratio_clip)
        multipliers.gamma = gamma * ratio ** mu
        return mu


def initial_distributed_multipliers(compiled, problem, beta=1e-3, gamma=1e-3):
    """Flow-conserving start with a per-net γ vector (γ_i = ``gamma`` on
    constrained nets, 0 elsewhere)."""
    state = MultiplierState.initial(compiled, beta=beta, gamma=0.0)
    vec = np.where(np.isfinite(problem.noise_bounds_ff), float(gamma), 0.0)
    state.gamma = vec
    return state


class DistributedNoiseOGWS(OGWSOptimizer):
    """OGWS solving the distributed-bound program.

    Thin configuration subclass: wires the distributed update rule and
    the per-net multiplier initialization into the standard loop (LRS
    already consumes the γ vector via ``CouplingSet.slope_sums``).
    """

    def __init__(self, engine, problem, **kwargs):
        if not isinstance(problem, DistributedSizingProblem):
            raise ValidationError(
                "DistributedNoiseOGWS needs a DistributedSizingProblem")
        kwargs.setdefault("update", DistributedMultiplicativeUpdate())
        super().__init__(engine, problem, **kwargs)

    def run(self, multipliers=None):
        if multipliers is None:
            multipliers = initial_distributed_multipliers(
                self.engine.compiled, self.problem)
        return super().run(multipliers)
