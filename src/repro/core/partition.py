"""Deterministic level-respecting circuit partitioning.

Splits one large :class:`~repro.circuit.circuit.Circuit` into K region
sub-circuits plus a boundary cut-set, the structural half of the
partitioned OGWS path (:mod:`repro.core.partitioned`).  The design
follows the ParaLarH decomposition (PAPERS.md, arXiv 2010.11893):
regions are solved as independent Lagrangian subproblems coordinated
through boundary arrival times, so the partition must be

* **level-respecting** — every cut edge goes from a lower region to a
  strictly higher one, so boundary information propagates in a single
  forward pass per outer iteration.  Gates are split into K contiguous
  chunks of the topological index order, which guarantees this by
  construction (edges only point from lower to higher indices).
* **deterministic and content-hash-stable** — the partition is a pure
  function of the circuit structure, K, and the seed: chunk boundaries
  sit near the balanced split, nudged inside a small window to the
  position crossed by the fewest wires (ties broken by a seeded draw),
  with no dependence on dict order, object identity, or the process.

Region construction (single-segment netlists — every wire has one
parent driver/gate and one child gate, or the sink):

* a gate belongs to its chunk's region; a wire travels with its
  *consumer* gate (primary-output wires stay with their producer), so
  each sizable global node lives in exactly one region;
* every external source feeding a region — a primary-input driver or a
  cut producer gate from an earlier region — becomes a **pseudo-driver**
  in that region (PI drivers keep their resistance, gate producers get
  the technology driver resistance).  The partitioned solver injects the
  producer's arrival time at the pseudo-driver as a delay offset
  (:attr:`~repro.timing.elmore.ElmoreEngine.arrival_offsets`);
* a cut producer left with no in-region fanout gets a **stub
  primary-output wire** (same length as its first cut wire, default
  load) so the region circuit satisfies every structural invariant.

The cut wire and the stub both carry area/capacitance, so the union of
region metrics slightly over-counts the monolithic circuit — part of
the documented partitioned-vs-monolithic tolerance contract
(docs/architecture.md).

:class:`PartitionPlan` is compiled once per (circuit, K, seed) and
carries precompiled index maps in the same spirit as
:mod:`repro.timing.kernels`: per-region local↔global node maps for the
size scatter/gather and per-(consumer, producer) boundary index arrays
for the once-per-iteration arrival exchange.
"""

import copy
import dataclasses
import hashlib

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.components import Node, NodeKind
from repro.utils.errors import ValidationError
from repro.utils.rng import derive_rng, make_rng

#: Regions below this many gates are pointless (kernel setup dominates).
MIN_REGION_GATES = 8


@dataclasses.dataclass(frozen=True)
class CutEdge:
    """One boundary edge of the partition.

    The producer gate lives in ``producer_region``; the cut wire (and
    the gate it feeds) lives in ``consumer_region``, fed there by the
    pseudo-driver at ``driver_local``.
    """

    wire_global: int
    producer_global: int
    producer_region: int
    consumer_region: int
    producer_local: int
    driver_local: int


@dataclasses.dataclass(frozen=True)
class Region:
    """One region sub-circuit plus its index maps."""

    index: int
    circuit: Circuit
    #: Local node index → global node index; −1 for nodes with no global
    #: counterpart (source, sink, pseudo-drivers, stub PO wires).
    local_to_global: np.ndarray
    #: Global indices of the member gates (ascending).
    global_gates: np.ndarray
    #: Local indices of the region's *true* primary-output wires (wires
    #: that feed the global sink); stubs are excluded.
    true_po_local: np.ndarray


class PartitionPlan:
    """K regions + cut-set + precompiled scatter/gather operators."""

    def __init__(self, circuit, k, seed, boundaries, regions, cuts):
        self.circuit = circuit
        self.k = int(k)
        self.seed = seed
        self.boundaries = tuple(int(b) for b in boundaries)
        self.regions = list(regions)
        self.cuts = list(cuts)
        # Boundary exchange operators: for each consumer region r, a map
        # producer-region q → (driver_local[], producer_local[]) so the
        # once-per-iteration consensus update is pure fancy indexing.
        self.exchange = []
        for r in range(self.k):
            per_producer = {}
            for cut in self.cuts:
                if cut.consumer_region != r:
                    continue
                per_producer.setdefault(cut.producer_region, ([], []))
                dst, src = per_producer[cut.producer_region]
                dst.append(cut.driver_local)
                src.append(cut.producer_local)
            self.exchange.append({
                q: (np.asarray(dst, dtype=np.int64),
                    np.asarray(src, dtype=np.int64))
                for q, (dst, src) in sorted(per_producer.items())
            })

    @property
    def cut_count(self):
        return len(self.cuts)

    def gather(self, region_sizes):
        """Assemble the global size vector from per-region size vectors.

        Every sizable global node is owned by exactly one region; nodes
        private to a region (pseudo-drivers, stubs) are dropped.
        """
        x = np.zeros(self.circuit.num_nodes)
        for region, sizes in zip(self.regions, region_sizes):
            mask = region.local_to_global >= 0
            x[region.local_to_global[mask]] = np.asarray(sizes)[mask]
        return x

    def signature(self):
        """SHA-256 of the full partition structure (determinism pin)."""
        digest = hashlib.sha256()
        digest.update(f"k={self.k};seed={self.seed};"
                      f"b={self.boundaries}".encode())
        for region in self.regions:
            digest.update(region.local_to_global.tobytes())
            digest.update(region.global_gates.tobytes())
        for cut in self.cuts:
            digest.update(repr(dataclasses.astuple(cut)).encode())
        return digest.hexdigest()


def _check_single_segment(circuit):
    """Partitioning requires dedicated wires: one parent (driver/gate),
    one child (gate or sink) — what the generators and the ISCAS85
    parser emit.  Multi-segment routing trees are rejected."""
    for node in circuit.nodes:
        if not node.is_wire:
            continue
        parent = circuit.node(circuit.inputs(node.index)[0])
        outs = circuit.outputs(node.index)
        if not (parent.is_driver or parent.is_gate) or len(outs) != 1:
            raise ValidationError(
                f"partitioning requires single-segment wires; "
                f"wire {node.name!r} violates this")


def _choose_boundaries(circuit, gates, k, seed):
    """Chunk boundaries in gate-ordinal space: near the balanced split,
    nudged to the minimum-crossing position inside a small window."""
    n = len(gates)
    ordinal = {g: i for i, g in enumerate(gates)}
    # crossings[p] = number of gate→gate dependencies (through a wire)
    # crossing the split "first p gates | rest".
    diff = np.zeros(n + 2, dtype=np.int64)
    for node in circuit.nodes:
        if not node.is_wire:
            continue
        parent = circuit.node(circuit.inputs(node.index)[0])
        if not parent.is_gate:
            continue
        child = circuit.outputs(node.index)[0]
        if child == circuit.sink_index:
            continue
        a, b = ordinal[parent.index], ordinal[child]
        diff[a + 1] += 1
        diff[b + 1] -= 1
    crossings = np.cumsum(diff)[:n + 1]
    rng = derive_rng(make_rng(seed), "partition-boundaries")
    window = max(1, n // (8 * k))
    boundaries = []
    prev = 0
    for i in range(1, k):
        target = round(i * n / k)
        lo = max(prev + 1, target - window)
        hi = min(n - (k - i), target + window)
        if lo > hi:
            raise ValidationError(
                f"cannot split {n} gates into {k} regions")
        cand = crossings[lo:hi + 1]
        best = np.flatnonzero(cand == cand.min())
        pick = best[int(rng.integers(0, len(best)))] if len(best) > 1 \
            else best[0]
        prev = lo + int(pick)
        boundaries.append(prev)
    return boundaries


def partition_circuit(circuit, k, seed=0):
    """Split ``circuit`` into a :class:`PartitionPlan` with ``k`` regions.

    Deterministic for a given ``(circuit, k, seed)``; raises
    :class:`~repro.utils.errors.ValidationError` when the circuit is too
    small for ``k`` regions or uses multi-segment routing trees.
    """
    k = int(k)
    if k < 2:
        raise ValidationError("partition_circuit needs k >= 2")
    gates = [n.index for n in circuit.nodes if n.is_gate]
    if len(gates) < k * MIN_REGION_GATES:
        raise ValidationError(
            f"{len(gates)} gates is too small for {k} regions "
            f"(need >= {MIN_REGION_GATES} gates per region)")
    _check_single_segment(circuit)
    boundaries = _choose_boundaries(circuit, gates, k, seed)

    # Region of every gate, then of every wire (consumer's region;
    # primary-output wires follow their producer gate).
    reg_of = np.full(circuit.num_nodes, -1, dtype=np.int64)
    edges_at = [0] + boundaries + [len(gates)]
    for r in range(k):
        for ordinal in range(edges_at[r], edges_at[r + 1]):
            reg_of[gates[ordinal]] = r
    sink = circuit.sink_index
    for node in circuit.nodes:
        if not node.is_wire:
            continue
        child = circuit.outputs(node.index)[0]
        if child == sink:
            parent = circuit.inputs(node.index)[0]
            reg_of[node.index] = reg_of[parent] if reg_of[parent] >= 0 else 0
        else:
            reg_of[node.index] = reg_of[child]

    tech = circuit.tech
    regions = []
    cuts = []
    for r in range(k):
        members = [n for n in circuit.nodes
                   if reg_of[n.index] == r and n.kind.is_sizable]
        # External sources: global index of every PI driver or
        # out-of-region gate that feeds a member wire.
        ext = set()
        cut_wires = []  # (wire node, producer gate node)
        for node in members:
            if not node.is_wire:
                continue
            parent = circuit.node(circuit.inputs(node.index)[0])
            if parent.is_driver:
                ext.add(parent.index)
            elif reg_of[parent.index] != r:
                ext.add(parent.index)
                cut_wires.append((node, parent))
        ext = sorted(ext)

        local_of = {}
        nodes = [Node(index=0, kind=NodeKind.SOURCE, name="@source")]
        edges = []
        for g in ext:
            src = circuit.node(g)
            idx = len(nodes)
            local_of[g] = idx
            r_hat = src.r_hat if src.is_driver else tech.driver_resistance
            nodes.append(Node(index=idx, kind=NodeKind.DRIVER,
                              name=src.name, r_hat=r_hat))
            edges.append((0, idx))
        for node in members:  # ascending global index = topological
            idx = len(nodes)
            local_of[node.index] = idx
            # copy.copy + setattr instead of dataclasses.replace: replace
            # re-runs __init__/__post_init__ validation per node, which
            # dominates partitioning time on 10k+ gate circuits.
            clone = copy.copy(node)
            object.__setattr__(clone, "index", idx)
            nodes.append(clone)
        # Member gates whose every fanout wire moved to a later region
        # (cut producers with no in-region fanout) need a stub PO wire.
        gate_fanout = {n.index: 0 for n in members if n.is_gate}
        true_po_local = []
        for node in members:
            idx = local_of[node.index]
            if node.is_wire:
                parent = circuit.inputs(node.index)[0]
                edges.append((local_of[parent], idx))
                if parent in gate_fanout:
                    gate_fanout[parent] += 1
                child = circuit.outputs(node.index)[0]
                if child == sink:
                    true_po_local.append(idx)
                else:
                    edges.append((idx, local_of[child]))
        sink_feeders = list(true_po_local)
        for g, fanout in sorted(gate_fanout.items()):
            if fanout:
                continue
            src = circuit.node(g)
            # Stub length mirrors the gate's first (lowest-index) real
            # fanout wire, so the replaced load is the same order.
            length = circuit.node(min(circuit.outputs(g))).length
            idx = len(nodes)
            nodes.append(Node(
                index=idx, kind=NodeKind.WIRE, name=f"{src.name}.cut",
                r_hat=tech.wire_unit_resistance * length,
                c_hat=tech.wire_unit_capacitance * length,
                fringe=tech.wire_fringe_capacitance * length,
                alpha=length, length=length,
                lower=tech.min_size, upper=tech.max_size,
                load_cap=tech.load_capacitance))
            edges.append((local_of[g], idx))
            sink_feeders.append(idx)
        local_sink = len(nodes)
        nodes.append(Node(index=local_sink, kind=NodeKind.SINK, name="@sink"))
        for idx in sink_feeders:
            edges.append((idx, local_sink))
        edges.sort()
        region_circuit = Circuit(
            nodes, edges, tech,
            name=f"{circuit.name or 'circuit'}.r{r}of{k}")
        local_to_global = np.full(len(nodes), -1, dtype=np.int64)
        for g, idx in local_of.items():
            if circuit.node(g).kind.is_sizable and reg_of[g] == r:
                local_to_global[idx] = g
        regions.append(Region(
            index=r, circuit=region_circuit,
            local_to_global=local_to_global,
            global_gates=np.asarray(
                [n.index for n in members if n.is_gate], dtype=np.int64),
            true_po_local=np.asarray(sorted(true_po_local), dtype=np.int64)))
        for wire, parent in cut_wires:
            cuts.append(CutEdge(
                wire_global=wire.index,
                producer_global=parent.index,
                producer_region=int(reg_of[parent.index]),
                consumer_region=r,
                producer_local=-1,  # filled below, after all regions exist
                driver_local=local_of[parent.index]))

    # Resolve producer-local indices now that every region is built.
    local_index = [
        {int(g): int(l) for l, g in enumerate(region.local_to_global) if g >= 0}
        for region in regions
    ]
    cuts = [dataclasses.replace(
        cut, producer_local=local_index[cut.producer_region][
            cut.producer_global]) for cut in cuts]
    return PartitionPlan(circuit, k, seed, boundaries, regions, cuts)
