"""Lagrange multiplier state and the flow-conservation projection.

One multiplier sits on every edge of the circuit graph (``λ_ji`` for the
arrival-time constraint carried by edge ``(j, i)``), plus scalars ``β``
(power) and ``γ`` (crosstalk).  Theorem 3's optimality condition is flow
conservation — at every node except source and sink, in-flow equals
out-flow, "analogous to Kirchhoff's current law".

The paper's step A5 projects updated multipliers "onto the nearest point
in the optimality condition".  Following the practice of Chen–Chu–Wong
style LR sizers, :meth:`MultiplierState.project` performs one reverse-
topological sweep that rescales each node's in-edge multipliers so their
sum equals the (already final) out-flow.  This restores conservation
*exactly* in a single O(#edges) pass — it is a network-flow
renormalization rather than the Euclidean projection, preserving the
relative weights the subgradient step assigned to competing in-edges
(DESIGN.md §2).
"""

import numpy as np

from repro.utils.errors import ValidationError


class MultiplierState:
    """Edge multipliers ``λ``, power multiplier ``β``, crosstalk ``γ``.

    The edge array aligns with ``compiled.edge_src``/``edge_dst``.  Node
    aggregates ``λ_i = Σ_{j∈input(i)} λ_ji`` (Theorem 4) are recomputed on
    demand via :meth:`node_multipliers`.
    """

    def __init__(self, compiled, lam_edge=None, beta=0.0, gamma=0.0):
        self.compiled = compiled
        if lam_edge is None:
            lam_edge = np.zeros(compiled.num_edges)
        lam_edge = np.asarray(lam_edge, dtype=float).copy()
        if lam_edge.shape != (compiled.num_edges,):
            raise ValidationError("lam_edge must have one entry per edge")
        if np.any(lam_edge < 0) or beta < 0 or np.any(np.asarray(gamma) < 0):
            raise ValidationError("multipliers must be non-negative (Theorem 6(4))")
        self.lam_edge = lam_edge
        self.beta = float(beta)
        # γ is the paper's scalar, or a per-node array under the
        # distributed per-net crosstalk bounds extension.
        gamma_arr = np.asarray(gamma, dtype=float)
        self.gamma = gamma_arr.copy() if gamma_arr.ndim else float(gamma)

    @classmethod
    def initial(cls, compiled, beta=1e-3, gamma=1e-3, sink_weight=1.0,
                backend="kernel"):
        """The paper's A1: an arbitrary point satisfying Theorem 3.

        Every sink in-edge starts at ``sink_weight``; one projection sweep
        then propagates consistent flows to every edge upstream.
        ``backend`` selects the projection implementation so a
        reference-backend solver run stays on the legacy code path
        throughout (OGWS threads its engine's backend here).
        """
        lam = np.zeros(compiled.num_edges)
        lam[compiled.sink_in_edges] = sink_weight
        state = cls(compiled, lam, beta=beta, gamma=gamma)
        state.project(backend=backend)
        return state

    # -- aggregates ---------------------------------------------------------------

    def node_multipliers(self):
        """``λ_i = Σ in-edge multipliers`` for every node (Theorem 4)."""
        cc = self.compiled
        return np.bincount(cc.edge_dst, weights=self.lam_edge,
                           minlength=cc.num_nodes).astype(float)

    def sink_flow(self):
        """Total multiplier into the sink (weights the ``A0`` constant)."""
        return float(np.sum(self.lam_edge[self.compiled.sink_in_edges]))

    def conservation_residual(self):
        """Max |in-flow − out-flow| over internal nodes (0 ⇒ Theorem 3 holds)."""
        cc = self.compiled
        inflow = np.bincount(cc.edge_dst, weights=self.lam_edge,
                             minlength=cc.num_nodes)
        outflow = np.bincount(cc.edge_src, weights=self.lam_edge,
                              minlength=cc.num_nodes)
        internal = ~np.isin(np.arange(cc.num_nodes), (cc.source, cc.sink))
        return float(np.max(np.abs(inflow - outflow)[internal], initial=0.0))

    # -- projection ---------------------------------------------------------------

    def project(self, backend="kernel"):
        """Restore Theorem 3 exactly (one reverse-topological sweep).

        Processing nodes from the deepest level upward, each node's
        out-flow is already final, so scaling its in-edges to sum to that
        out-flow settles conservation in one pass.  Nodes whose in-edges
        are all zero receive the out-flow split equally; nodes with zero
        out-flow zero their in-edges.

        Runs over the circuit's precompiled condensed cascade
        (:func:`repro.timing.kernels.project_sweep`); the per-level
        reference spelling is kept as :meth:`_project_reference`
        (``backend="reference"`` selects it, mirroring the engine's
        sweep-backend flag) and pinned equivalent by the kernel tests.
        """
        if backend == "reference":
            return self._project_reference()
        from repro.timing.kernels import project_sweep

        project_sweep(self.compiled.sweep_plan(), self.lam_edge)
        return self

    def _project_reference(self):
        """Original unbuffered per-level sweep (golden reference)."""
        cc = self.compiled
        lam = self.lam_edge
        # Each edge belongs to exactly one src-level and one dst-level
        # group, so accumulating group by group keeps the whole sweep at
        # O(#edges).  An edge's λ is final once its dst node has been
        # processed, and every out-edge of a level-ℓ node points to a
        # deeper level — so its outflow below is computed from final
        # values.
        outflow = np.zeros(cc.num_nodes)
        inflow = np.zeros(cc.num_nodes)
        for level in range(cc.num_levels - 2, 0, -1):
            eids_out = cc.edges_by_src_level[level]
            if len(eids_out):
                np.add.at(outflow, cc.edge_src[eids_out], lam[eids_out])
            eids = cc.edges_by_dst_level[level]
            if not len(eids):
                continue
            dst = cc.edge_dst[eids]
            np.add.at(inflow, dst, lam[eids])
            safe_in = np.where(inflow[dst] > 0.0, inflow[dst], 1.0)
            lam[eids] *= np.where(inflow[dst] > 0.0, outflow[dst] / safe_in, 0.0)
            # Dead in-edges under live out-flow: split out-flow equally.
            dead = (inflow[dst] <= 0.0) & (outflow[dst] > 0.0)
            if np.any(dead):
                lam[eids[dead]] = (outflow[dst] / cc.in_degree[dst])[dead]
        return self

    # -- lockstep column stacking ---------------------------------------------------

    @staticmethod
    def stack_lam(states):
        """``(E, K)`` column stack of ``lam_edge`` over ``states``.

        The lockstep driver and the batched A4 updates move K scenarios'
        edge multipliers through matrix kernels (batched projection,
        broadcast ratio updates); this pairs with :meth:`unstack_lam`
        for the writeback.
        """
        return np.column_stack([s.lam_edge for s in states])

    @staticmethod
    def unstack_lam(states, lam_cols):
        """Write ``lam_cols`` columns back into ``states``' ``lam_edge``.

        Each state receives a fresh contiguous copy of its column —
        downstream consumers (kernels, the next LRS aggregate) assume
        contiguous edge arrays, and a strided view would silently change
        reduction bits (see :func:`repro.timing.kernels.column_sums`).
        """
        for j, state in enumerate(states):
            state.lam_edge = np.ascontiguousarray(lam_cols[:, j])
        return states

    def copy(self):
        gamma = self.gamma.copy() if isinstance(self.gamma, np.ndarray) \
            else self.gamma
        return MultiplierState(self.compiled, self.lam_edge.copy(),
                               beta=self.beta, gamma=gamma)

    @property
    def nbytes(self):
        return self.lam_edge.nbytes

    def __repr__(self):
        gamma = f"{self.gamma:.4g}" if np.ndim(self.gamma) == 0 else \
            f"array(max={float(np.max(self.gamma)):.4g})"
        return (
            f"MultiplierState(sink_flow={self.sink_flow():.4g}, "
            f"beta={self.beta:.4g}, gamma={gamma})"
        )
