"""The Lagrangian relaxation subproblem solver (paper Fig. 8, Theorem 5).

With multipliers fixed (and satisfying Theorem 3), minimizing the
Lagrangian over the box ``L ≤ x ≤ U`` decouples into the closed-form
per-component update

    opt_i = sqrt( λ_i·r̂_i·(C'_i + Σ_{j∈N(i)} ĉ_ij·x_j)
                  ───────────────────────────────────────────
                  α_i + (β + R_i)·ĉ_i + γ·Σ_{j∈N(i)} ĉ_ij )

    x*_i  = min(U_i, max(L_i, opt_i))

where ``C'_i`` is node i's downstream capacitance with its own
x_i-proportional terms removed and ``R_i`` the λ-weighted upstream
resistance.  :class:`LagrangianSubproblemSolver` iterates this update to
its fixed point (paper step S5 "repeat until no improvement"), evaluating
each pass with three vectorized sweeps (S2: capacitances, S3: upstream
resistances, S4: the update) — linear work per pass.

Two pass implementations sit behind the engine's ``backend`` flag:

* ``"kernel"`` (default): the S2/S3/S4 sweeps are *fused* into one
  workspace-backed pass (:meth:`_solve_kernel`) over the circuit's
  precompiled :class:`~repro.timing.kernels.SweepPlan`.  All coupling
  terms come from one :meth:`CouplingSet.node_terms` traversal, every
  intermediate lives in the engine's preallocated
  :class:`~repro.timing.kernels.Workspace`, and a steady-state pass
  performs **no array allocation** (guarded by tracemalloc in
  ``tests/timing/test_kernels.py``).  Measured on c7552 this makes one
  pass ~4× faster than the reference spelling (see ``BENCH_perf.json``).
* ``"reference"``: the original engine-method-per-sweep loop, kept as
  the golden implementation; the property tests pin kernel ≡ reference
  to 1e-12 relative across delay modes, coupling orders, and scalar /
  per-net γ.

Generalizations beyond the paper, both documented in DESIGN.md §2:

* coupling Taylor order k > 2: the coupling sums are evaluated at the
  current iterate via :meth:`CouplingSet.node_terms` (exactly the
  paper's constants when k = 2);
* ``CouplingDelayMode.PROPAGATED``: the denominator gains the
  ``R_i·Σ ∂c_ij/∂x_i`` term that full propagation induces.
"""

import dataclasses

import numpy as np

from repro.timing import kernels
from repro.timing.elmore import CouplingDelayMode
from repro.timing.metrics import total_area, total_capacitance
from repro.utils.errors import ConvergenceError
from repro.utils.units import OHM_FF_TO_PS


@dataclasses.dataclass(frozen=True)
class LRSResult:
    """Fixed point of the LRS iteration."""

    x: np.ndarray
    passes: int
    max_rel_change: float
    converged: bool


class LagrangianSubproblemSolver:
    """Greedy optimal solver for ``LRS₂`` (Fig. 8).

    Parameters
    ----------
    engine:
        :class:`~repro.timing.elmore.ElmoreEngine` (supplies circuit,
        coupling set, delay mode, and sweep backend).
    tolerance:
        Fixed-point stop: max relative size change per pass.
    max_passes:
        Pass budget; exceeding it returns ``converged=False`` (or raises
        when ``strict``).
    """

    def __init__(self, engine, tolerance=1e-7, max_passes=200, strict=False):
        self.engine = engine
        self.tolerance = float(tolerance)
        self.max_passes = int(max_passes)
        self.strict = bool(strict)

    def solve(self, multipliers, x0=None):
        """Minimize ``L_{λ,β,γ}(x)`` over the size box.

        ``x0`` seeds the fixed point (paper S1 starts from ``L``; any
        start converges to the same unique optimum — warm starts from the
        previous outer iteration just get there in fewer passes).
        """
        if self.engine.backend == "kernel":
            return self._solve_kernel(multipliers, x0)
        return self._solve_reference(multipliers, x0)

    # -- fused kernel path --------------------------------------------------------

    def _solve_kernel(self, multipliers, x0):
        """S2+S3+S4 fused into one workspace-backed pass per iteration.

        Per pass: one :meth:`CouplingSet.node_terms` traversal (cap/slope
        sums and, under PROPAGATED, per-node coupling caps), one reverse
        capacitance sweep, one forward λ-weighted resistance sweep, and
        the elementwise ``opt_i`` update — all into preallocated buffers.
        The iterate ping-pongs between the workspace's two size vectors,
        so the returned ``x`` is copied out once at the end.
        """
        engine = self.engine
        cc = engine.compiled
        plan = cc.sweep_plan()
        ws = engine.workspace()
        coupling = engine.coupling
        lam_node = multipliers.node_multipliers()
        beta, gamma = multipliers.beta, multipliers.gamma
        propagated = engine.mode is CouplingDelayMode.PROPAGATED
        coupled_delay = engine.mode is not CouplingDelayMode.NONE
        sizable = cc.is_sizable
        numer_lam_r = lam_node * plan.r_hat_eff
        alpha_beta = cc.alpha + beta * cc.c_hat

        x, x_new = ws.x_a, ws.x_b
        if x0 is None:
            np.copyto(x, cc.lower)
        else:
            np.copyto(x, np.asarray(x0, dtype=float))
        np.maximum(x, cc.lower, out=x)
        np.clip(x, cc.lower, cc.upper, out=x)
        x[plan.nonsizable_idx] = 0.0

        max_rel = np.inf
        passes = 0
        with np.errstate(invalid="ignore", divide="ignore"):
            while passes < self.max_passes and max_rel > self.tolerance:
                passes += 1
                terms = coupling.node_terms(x, gamma, node_caps=propagated)
                # S2: self caps + stage-closure capacitance accumulation.
                kernels.s2_source_terms(plan, cc, x, terms.node_caps,
                                        propagated, ws.cself,
                                        ws.source_terms, ws.t1)
                kernels.child_sum_sweep(plan, ws.source_terms, ws.child_sum, ws)
                # S3: r = r̂/x on sizables (drivers are preset in the
                # workspace); λ-weighted stage-closure accumulation.
                np.divide(plan.r_hat_eff, x, out=ws.r_eff, where=sizable)
                np.multiply(lam_node, ws.r_eff, out=ws.t2)
                kernels.upstream_sweep(plan, ws.t2, ws.upstream, ws)
                # S4: closed-form opt_i, clipped into the box.
                np.add(ws.child_sum, plan.half_fringe_wire, out=ws.k_cap)
                if coupled_delay:
                    np.multiply(terms.cap_sum, plan.wire_mask_f, out=ws.t1)
                    np.add(ws.k_cap, ws.t1, out=ws.k_cap)
                np.multiply(ws.upstream, cc.c_hat, out=ws.denom)
                np.add(ws.denom, alpha_beta, out=ws.denom)
                np.add(ws.denom, terms.gamma_slopes, out=ws.denom)
                if propagated:
                    np.multiply(ws.upstream, terms.dx_sum, out=ws.t1)
                    np.add(ws.denom, ws.t1, out=ws.denom)
                # Non-sizable entries of ``opt`` keep stale (finite,
                # non-negative) values; the clip + explicit zeroing of
                # x_new below makes them irrelevant.
                np.multiply(numer_lam_r, ws.k_cap, out=ws.t1)
                np.divide(ws.t1, ws.denom, out=ws.opt, where=sizable)
                np.sqrt(ws.opt, out=ws.opt)
                np.clip(ws.opt, cc.lower, cc.upper, out=x_new)
                x_new[plan.nonsizable_idx] = 0.0
                # Fixed-point progress: max relative size change.
                np.subtract(x_new, x, out=ws.t1)
                np.abs(ws.t1, out=ws.t1)
                np.divide(ws.t1, x, out=ws.t1, where=sizable)
                if len(plan.sizable_idx):
                    np.take(ws.t1, plan.sizable_idx, out=ws.szbuf)
                    max_rel = float(ws.szbuf.max())
                else:
                    max_rel = 0.0
                x, x_new = x_new, x
        return self._finish(x.copy(), passes, max_rel)

    # -- reference path -----------------------------------------------------------

    def _solve_reference(self, multipliers, x0):
        """The original spelling: one engine sweep call per step."""
        engine = self.engine
        cc = engine.compiled
        coupling = engine.coupling
        lam_node = multipliers.node_multipliers()
        beta, gamma = multipliers.beta, multipliers.gamma

        x = cc.lower.copy() if x0 is None else np.asarray(x0, dtype=float).copy()
        x = cc.clip_sizes(np.where(cc.is_sizable, np.maximum(x, cc.lower), 0.0))

        sizable = cc.is_sizable
        wires = cc.is_wire
        r_hat_eff = cc.r_hat * OHM_FF_TO_PS
        numer_lam_r = lam_node * r_hat_eff

        max_rel = np.inf
        passes = 0
        while passes < self.max_passes and max_rel > self.tolerance:
            passes += 1
            caps = engine.capacitances(x)                       # S2
            upstream = engine.weighted_upstream_resistance(x, lam_node)  # S3
            cap_sum, dx_sum = coupling.node_sums(x)
            # γ may be the paper's scalar or, in the distributed-bound
            # extension, a per-net array (read at each pair's owner).
            gamma_slopes = coupling.slope_sums(x, gamma)
            if engine.mode is CouplingDelayMode.NONE:
                k_cap = caps["child_sum"] + np.where(wires, 0.5 * cc.fringe, 0.0)
                cpl_np = np.zeros_like(dx_sum)
            else:
                k_cap = caps["child_sum"] + np.where(
                    wires, 0.5 * cc.fringe + cap_sum, 0.0)
                cpl_np = dx_sum
            denom = cc.alpha + (beta + upstream) * cc.c_hat + gamma_slopes
            if engine.mode is CouplingDelayMode.PROPAGATED:
                denom = denom + upstream * cpl_np
            opt = np.zeros_like(x)
            np.divide(numer_lam_r * k_cap, denom, out=opt, where=sizable)
            np.sqrt(opt, out=opt)                               # S4
            x_new = cc.clip_sizes(np.where(sizable, opt, 0.0))
            with np.errstate(invalid="ignore"):
                rel = np.abs(x_new - x) / np.where(sizable, x, 1.0)
            max_rel = float(np.max(rel[sizable], initial=0.0))
            x = x_new
        return self._finish(x, passes, max_rel)

    def _finish(self, x, passes, max_rel):
        converged = max_rel <= self.tolerance
        if not converged and self.strict:
            raise ConvergenceError(
                f"LRS did not reach tolerance {self.tolerance} in "
                f"{self.max_passes} passes (last change {max_rel:.2e})"
            )
        return LRSResult(x=x, passes=passes, max_rel_change=max_rel,
                         converged=converged)

    # -- Lagrangian evaluation ----------------------------------------------------

    def lagrangian_value(self, x, multipliers, problem, context=None):
        """``L_{λ,β,γ}(x)`` of Theorem 4, including the eliminated-arrival
        constant ``−A0·Σ λ_sink`` (so that ``min_x L`` is the dual value).

        ``context`` is an optional
        :class:`~repro.timing.metrics.EvalContext` at the same point;
        when given, the delays, area, capacitance, and coupling totals
        already computed for the outer iteration are reused instead of
        re-running the full-circuit sweeps here.
        """
        engine = self.engine
        cc = engine.compiled
        lam_node = multipliers.node_multipliers()
        if context is not None:
            delays = context.delays
            area = context.area_um2
        else:
            delays = engine.delays(x)
            area = total_area(cc, x)
        value = area
        value += float(np.dot(lam_node, delays))
        if np.isfinite(problem.power_cap_bound_ff):
            total_cap = context.total_cap_ff if context is not None \
                else total_capacitance(cc, x)
            value += multipliers.beta * (total_cap
                                         - problem.power_cap_bound_ff)
        gamma = np.asarray(multipliers.gamma, dtype=float)
        if gamma.ndim:  # distributed per-net bounds (extension)
            net_caps = context.net_caps_ff if context is not None \
                else engine.coupling.net_caps(x)
            slack = net_caps - problem.noise_bounds_ff
            active = np.isfinite(problem.noise_bounds_ff)
            value += float(np.dot(gamma[active], slack[active]))
        elif np.isfinite(problem.noise_bound_ff):
            coupling_total = context.coupling_total_ff if context is not None \
                else engine.coupling.total(x)
            value += multipliers.gamma * (coupling_total
                                          - problem.noise_bound_ff)
        value -= problem.delay_bound_ps * multipliers.sink_flow()
        return value
