"""The Lagrangian relaxation subproblem solver (paper Fig. 8, Theorem 5).

With multipliers fixed (and satisfying Theorem 3), minimizing the
Lagrangian over the box ``L ≤ x ≤ U`` decouples into the closed-form
per-component update

    opt_i = sqrt( λ_i·r̂_i·(C'_i + Σ_{j∈N(i)} ĉ_ij·x_j)
                  ───────────────────────────────────────────
                  α_i + (β + R_i)·ĉ_i + γ·Σ_{j∈N(i)} ĉ_ij )

    x*_i  = min(U_i, max(L_i, opt_i))

where ``C'_i`` is node i's downstream capacitance with its own
x_i-proportional terms removed and ``R_i`` the λ-weighted upstream
resistance.  :class:`LagrangianSubproblemSolver` iterates this update to
its fixed point (paper step S5 "repeat until no improvement"), evaluating
each pass with three vectorized sweeps (S2: capacitances, S3: upstream
resistances, S4: the update) — linear work per pass.

Generalizations beyond the paper, both documented in DESIGN.md §2:

* coupling Taylor order k > 2: the coupling sums are evaluated at the
  current iterate via :meth:`CouplingSet.node_sums` (exactly the paper's
  constants when k = 2);
* ``CouplingDelayMode.PROPAGATED``: the denominator gains the
  ``R_i·Σ ∂c_ij/∂x_i`` term that full propagation induces.
"""

import dataclasses

import numpy as np

from repro.timing.elmore import CouplingDelayMode
from repro.timing.metrics import total_area, total_capacitance
from repro.utils.errors import ConvergenceError
from repro.utils.units import OHM_FF_TO_PS


@dataclasses.dataclass(frozen=True)
class LRSResult:
    """Fixed point of the LRS iteration."""

    x: np.ndarray
    passes: int
    max_rel_change: float
    converged: bool


class LagrangianSubproblemSolver:
    """Greedy optimal solver for ``LRS₂`` (Fig. 8).

    Parameters
    ----------
    engine:
        :class:`~repro.timing.elmore.ElmoreEngine` (supplies circuit,
        coupling set, and delay mode).
    tolerance:
        Fixed-point stop: max relative size change per pass.
    max_passes:
        Pass budget; exceeding it returns ``converged=False`` (or raises
        when ``strict``).
    """

    def __init__(self, engine, tolerance=1e-7, max_passes=200, strict=False):
        self.engine = engine
        self.tolerance = float(tolerance)
        self.max_passes = int(max_passes)
        self.strict = bool(strict)

    def solve(self, multipliers, x0=None):
        """Minimize ``L_{λ,β,γ}(x)`` over the size box.

        ``x0`` seeds the fixed point (paper S1 starts from ``L``; any
        start converges to the same unique optimum — warm starts from the
        previous outer iteration just get there in fewer passes).
        """
        engine = self.engine
        cc = engine.compiled
        coupling = engine.coupling
        lam_node = multipliers.node_multipliers()
        beta, gamma = multipliers.beta, multipliers.gamma

        x = cc.lower.copy() if x0 is None else np.asarray(x0, dtype=float).copy()
        x = cc.clip_sizes(np.where(cc.is_sizable, np.maximum(x, cc.lower), 0.0))

        sizable = cc.is_sizable
        wires = cc.is_wire
        r_hat_eff = cc.r_hat * OHM_FF_TO_PS
        numer_lam_r = lam_node * r_hat_eff

        max_rel = np.inf
        passes = 0
        while passes < self.max_passes and max_rel > self.tolerance:
            passes += 1
            caps = engine.capacitances(x)                       # S2
            upstream = engine.weighted_upstream_resistance(x, lam_node)  # S3
            cap_sum, dx_sum = coupling.node_sums(x)
            # γ may be the paper's scalar or, in the distributed-bound
            # extension, a per-net array (read at each pair's owner).
            gamma_slopes = coupling.slope_sums(x, gamma)
            if engine.mode is CouplingDelayMode.NONE:
                k_cap = caps["child_sum"] + np.where(wires, 0.5 * cc.fringe, 0.0)
                cpl_np = np.zeros_like(dx_sum)
            else:
                k_cap = caps["child_sum"] + np.where(
                    wires, 0.5 * cc.fringe + cap_sum, 0.0)
                cpl_np = dx_sum
            denom = cc.alpha + (beta + upstream) * cc.c_hat + gamma_slopes
            if engine.mode is CouplingDelayMode.PROPAGATED:
                denom = denom + upstream * cpl_np
            opt = np.zeros_like(x)
            np.divide(numer_lam_r * k_cap, denom, out=opt, where=sizable)
            np.sqrt(opt, out=opt)                               # S4
            x_new = cc.clip_sizes(np.where(sizable, opt, 0.0))
            with np.errstate(invalid="ignore"):
                rel = np.abs(x_new - x) / np.where(sizable, x, 1.0)
            max_rel = float(np.max(rel[sizable], initial=0.0))
            x = x_new
        converged = max_rel <= self.tolerance
        if not converged and self.strict:
            raise ConvergenceError(
                f"LRS did not reach tolerance {self.tolerance} in "
                f"{self.max_passes} passes (last change {max_rel:.2e})"
            )
        return LRSResult(x=x, passes=passes, max_rel_change=max_rel,
                         converged=converged)

    # -- Lagrangian evaluation ----------------------------------------------------

    def lagrangian_value(self, x, multipliers, problem):
        """``L_{λ,β,γ}(x)`` of Theorem 4, including the eliminated-arrival
        constant ``−A0·Σ λ_sink`` (so that ``min_x L`` is the dual value).
        """
        engine = self.engine
        cc = engine.compiled
        lam_node = multipliers.node_multipliers()
        delays = engine.delays(x)
        area = total_area(cc, x)
        value = area
        value += float(np.dot(lam_node, delays))
        if np.isfinite(problem.power_cap_bound_ff):
            value += multipliers.beta * (total_capacitance(cc, x)
                                         - problem.power_cap_bound_ff)
        gamma = np.asarray(multipliers.gamma, dtype=float)
        if gamma.ndim:  # distributed per-net bounds (extension)
            slack = engine.coupling.net_caps(x) - problem.noise_bounds_ff
            active = np.isfinite(problem.noise_bounds_ff)
            value += float(np.dot(gamma[active], slack[active]))
        elif np.isfinite(problem.noise_bound_ff):
            value += multipliers.gamma * (engine.coupling.total(x)
                                          - problem.noise_bound_ff)
        value -= problem.delay_bound_ps * multipliers.sink_flow()
        return value
