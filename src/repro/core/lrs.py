"""The Lagrangian relaxation subproblem solver (paper Fig. 8, Theorem 5).

With multipliers fixed (and satisfying Theorem 3), minimizing the
Lagrangian over the box ``L ≤ x ≤ U`` decouples into the closed-form
per-component update

    opt_i = sqrt( λ_i·r̂_i·(C'_i + Σ_{j∈N(i)} ĉ_ij·x_j)
                  ───────────────────────────────────────────
                  α_i + (β + R_i)·ĉ_i + γ·Σ_{j∈N(i)} ĉ_ij )

    x*_i  = min(U_i, max(L_i, opt_i))

where ``C'_i`` is node i's downstream capacitance with its own
x_i-proportional terms removed and ``R_i`` the λ-weighted upstream
resistance.  :class:`LagrangianSubproblemSolver` iterates this update to
its fixed point (paper step S5 "repeat until no improvement"), evaluating
each pass with three vectorized sweeps (S2: capacitances, S3: upstream
resistances, S4: the update) — linear work per pass.

Two pass implementations sit behind the engine's ``backend`` flag:

* ``"kernel"`` (default): the S2/S3/S4 sweeps are *fused* into one
  workspace-backed pass (:meth:`_solve_kernel`) over the circuit's
  precompiled :class:`~repro.timing.kernels.SweepPlan`.  All coupling
  terms come from one :meth:`CouplingSet.node_terms` traversal, every
  intermediate lives in the engine's preallocated
  :class:`~repro.timing.kernels.Workspace`, and a steady-state pass
  performs **no array allocation** (guarded by tracemalloc in
  ``tests/timing/test_kernels.py``).  Measured on c7552 this makes one
  pass ~4× faster than the reference spelling (see ``BENCH_perf.json``).
* ``"reference"``: the original engine-method-per-sweep loop, kept as
  the golden implementation; the property tests pin kernel ≡ reference
  to 1e-12 relative across delay modes, coupling orders, and scalar /
  per-net γ.

Generalizations beyond the paper, both documented in DESIGN.md §2:

* coupling Taylor order k > 2: the coupling sums are evaluated at the
  current iterate via :meth:`CouplingSet.node_terms` (exactly the
  paper's constants when k = 2);
* ``CouplingDelayMode.PROPAGATED``: the denominator gains the
  ``R_i·Σ ∂c_ij/∂x_i`` term that full propagation induces.
"""

import dataclasses

import numpy as np

from repro.timing import kernels
from repro.timing.elmore import CouplingDelayMode
from repro.timing.metrics import total_area, total_capacitance
from repro.utils.errors import ConvergenceError, ValidationError
from repro.utils.units import OHM_FF_TO_PS


@dataclasses.dataclass(frozen=True)
class LRSResult:
    """Fixed point of the LRS iteration."""

    x: np.ndarray
    passes: int
    max_rel_change: float
    converged: bool


class LagrangianSubproblemSolver:
    """Greedy optimal solver for ``LRS₂`` (Fig. 8).

    Parameters
    ----------
    engine:
        :class:`~repro.timing.elmore.ElmoreEngine` (supplies circuit,
        coupling set, delay mode, and sweep backend).
    tolerance:
        Fixed-point stop: max relative size change per pass.
    max_passes:
        Pass budget; exceeding it returns ``converged=False`` (or raises
        when ``strict``).
    """

    def __init__(self, engine, tolerance=1e-7, max_passes=200, strict=False):
        self.engine = engine
        self.tolerance = float(tolerance)
        self.max_passes = int(max_passes)
        self.strict = bool(strict)

    def solve(self, multipliers, x0=None):
        """Minimize ``L_{λ,β,γ}(x)`` over the size box.

        ``x0`` seeds the fixed point (paper S1 starts from ``L``; any
        start converges to the same unique optimum — warm starts from the
        previous outer iteration just get there in fewer passes).
        """
        if self.engine.backend == "kernel":
            return self._solve_kernel(multipliers, x0)
        return self._solve_reference(multipliers, x0)

    def solve_batch(self, multipliers, x0s=None, batch=None):
        """Solve K subproblems over one circuit in lockstep.

        ``multipliers`` is a sequence of K :class:`MultiplierState`\\ s
        (typically one per scenario sharing this engine's circuit and
        coupling set) and ``x0s`` optional per-column warm starts.
        Returns one :class:`LRSResult` per input, each **bit-identical**
        to ``solve(multipliers[k], x0s[k])``: the batched fused pass
        (:meth:`_solve_kernel_batch`) performs per column exactly the
        scalar pass's operations — CSR matvec becomes matmat, every
        elementwise update runs on ``(n, K)`` matrices — and a column is
        frozen (copied out, removed from the working set) the moment its
        own fixed-point criterion fires, so later passes never touch it.

        ``batch`` is an optional
        :class:`~repro.timing.kernels.BatchWorkspace` reused across
        calls (the lockstep optimizer threads one through all outer
        iterations).  Falls back to per-column :meth:`solve` for K = 1,
        the reference backend, or multipliers mixing scalar and per-net
        ``gamma`` forms.
        """
        multipliers = list(multipliers)
        if x0s is None:
            x0s = [None] * len(multipliers)
        x0s = list(x0s)
        if len(x0s) != len(multipliers):
            raise ValidationError("x0s must align with multipliers")
        per_net = [np.ndim(m.gamma) > 0 for m in multipliers]
        if (len(multipliers) <= 1 or self.engine.backend != "kernel"
                or (any(per_net) and not all(per_net))):
            return [self.solve(m, x0) for m, x0 in zip(multipliers, x0s)]
        return self._solve_kernel_batch(multipliers, x0s, batch,
                                        per_net=all(per_net))

    # -- fused kernel path --------------------------------------------------------

    def _solve_kernel(self, multipliers, x0):
        """S2+S3+S4 fused into one workspace-backed pass per iteration.

        Per pass: one :meth:`CouplingSet.node_terms` traversal (cap/slope
        sums and, under PROPAGATED, per-node coupling caps), one reverse
        capacitance sweep, one forward λ-weighted resistance sweep, and
        the elementwise ``opt_i`` update — all into preallocated buffers.
        The iterate ping-pongs between the workspace's two size vectors,
        so the returned ``x`` is copied out once at the end.
        """
        engine = self.engine
        cc = engine.compiled
        plan = cc.sweep_plan()
        ws = engine.workspace()
        coupling = engine.coupling
        lam_node = multipliers.node_multipliers()
        beta, gamma = multipliers.beta, multipliers.gamma
        propagated = engine.mode is CouplingDelayMode.PROPAGATED
        coupled_delay = engine.mode is not CouplingDelayMode.NONE
        sizable = cc.is_sizable
        numer_lam_r = lam_node * plan.r_hat_eff
        alpha_beta = cc.alpha + beta * cc.c_hat

        x, x_new = ws.x_a, ws.x_b
        if x0 is None:
            np.copyto(x, cc.lower)
        else:
            np.copyto(x, np.asarray(x0, dtype=float))
        np.maximum(x, cc.lower, out=x)
        np.clip(x, cc.lower, cc.upper, out=x)
        x[plan.nonsizable_idx] = 0.0

        max_rel = np.inf
        passes = 0
        with np.errstate(invalid="ignore", divide="ignore"):
            while passes < self.max_passes and max_rel > self.tolerance:
                passes += 1
                terms = coupling.node_terms(x, gamma, node_caps=propagated)
                # S2: self caps + stage-closure capacitance accumulation.
                kernels.s2_source_terms(plan, cc, x, terms.node_caps,
                                        propagated, ws.cself,
                                        ws.source_terms, ws.t1)
                kernels.child_sum_sweep(plan, ws.source_terms, ws.child_sum, ws)
                # S3: r = r̂/x on sizables (drivers are preset in the
                # workspace); λ-weighted stage-closure accumulation.
                np.divide(plan.r_hat_eff, x, out=ws.r_eff, where=sizable)
                np.multiply(lam_node, ws.r_eff, out=ws.t2)
                kernels.upstream_sweep(plan, ws.t2, ws.upstream, ws)
                # S4: closed-form opt_i, clipped into the box.
                np.add(ws.child_sum, plan.half_fringe_wire, out=ws.k_cap)
                if coupled_delay:
                    np.multiply(terms.cap_sum, plan.wire_mask_f, out=ws.t1)
                    np.add(ws.k_cap, ws.t1, out=ws.k_cap)
                np.multiply(ws.upstream, cc.c_hat, out=ws.denom)
                np.add(ws.denom, alpha_beta, out=ws.denom)
                np.add(ws.denom, terms.gamma_slopes, out=ws.denom)
                if propagated:
                    np.multiply(ws.upstream, terms.dx_sum, out=ws.t1)
                    np.add(ws.denom, ws.t1, out=ws.denom)
                # Non-sizable entries of ``opt`` keep stale (finite,
                # non-negative) values; the clip + explicit zeroing of
                # x_new below makes them irrelevant.
                np.multiply(numer_lam_r, ws.k_cap, out=ws.t1)
                np.divide(ws.t1, ws.denom, out=ws.opt, where=sizable)
                np.sqrt(ws.opt, out=ws.opt)
                np.clip(ws.opt, cc.lower, cc.upper, out=x_new)
                x_new[plan.nonsizable_idx] = 0.0
                # Fixed-point progress: max relative size change.
                np.subtract(x_new, x, out=ws.t1)
                np.abs(ws.t1, out=ws.t1)
                np.divide(ws.t1, x, out=ws.t1, where=sizable)
                if len(plan.sizable_idx):
                    np.take(ws.t1, plan.sizable_idx, out=ws.szbuf)
                    max_rel = float(ws.szbuf.max())
                else:
                    max_rel = 0.0
                x, x_new = x_new, x
        return self._finish(x.copy(), passes, max_rel)

    # -- batched kernel path ------------------------------------------------------

    def _solve_kernel_batch(self, multipliers, x0s, batch, per_net=False):
        """The fused pass over ``(n, K)`` column-stacked iterates.

        Column k replays :meth:`_solve_kernel`'s arithmetic exactly;
        when a column converges it is copied out and the survivors are
        compacted into the pooled buffers of the smaller width (fresh
        contiguous matrices, so the raw multi-vector CSR kernel keeps
        its layout).  Steady-state passes at a constant width allocate
        nothing beyond a few per-column scalars.
        """
        engine = self.engine
        cc = engine.compiled
        plan = cc.sweep_plan()
        bws = batch if batch is not None else kernels.BatchWorkspace(plan)
        coupling = engine.coupling
        propagated = engine.mode is CouplingDelayMode.PROPAGATED
        coupled_delay = engine.mode is not CouplingDelayMode.NONE
        c = plan.cols()

        total = len(multipliers)
        order = np.arange(total)            # working column -> input index
        out_x = [None] * total
        out_passes = [0] * total
        out_maxrel = [np.inf] * total

        ws = bws.buffers(total)
        x, x_new = ws.x_a, ws.x_b
        lam, numer, ab = ws.lam, ws.numer, ws.alpha_beta
        for k, mult in enumerate(multipliers):
            lam[:, k] = mult.node_multipliers()
        beta = np.array([float(m.beta) for m in multipliers])
        if per_net:
            gamma = np.column_stack(
                [np.asarray(m.gamma, dtype=float) for m in multipliers])
        else:
            gamma = np.array([float(m.gamma) for m in multipliers])
        np.multiply(lam, c.r_hat_eff, out=numer)
        np.multiply(c.c_hat, beta, out=ab)
        np.add(ab, c.alpha, out=ab)

        for k, x0 in enumerate(x0s):
            x[:, k] = cc.lower if x0 is None else np.asarray(x0, dtype=float)
        np.maximum(x, c.lower, out=x)
        np.clip(x, c.lower, c.upper, out=x)
        x[plan.nonsizable_idx] = 0.0

        passes = 0
        with np.errstate(invalid="ignore", divide="ignore"):
            while order.size and passes < self.max_passes:
                passes += 1
                terms = coupling.node_terms_batch(x, gamma,
                                                  node_caps=propagated)
                kernels.s2_source_terms(plan, cc, x, terms.node_caps,
                                        propagated, ws.cself,
                                        ws.source_terms, ws.t1)
                kernels.child_sum_sweep(plan, ws.source_terms, ws.child_sum,
                                        ws)
                np.divide(c.r_hat_eff, x, out=ws.r_eff, where=c.is_sizable)
                np.multiply(lam, ws.r_eff, out=ws.t2)
                kernels.upstream_sweep(plan, ws.t2, ws.upstream, ws)
                np.add(ws.child_sum, c.half_fringe_wire, out=ws.k_cap)
                if coupled_delay:
                    np.multiply(terms.cap_sum, c.wire_mask_f, out=ws.t1)
                    np.add(ws.k_cap, ws.t1, out=ws.k_cap)
                np.multiply(ws.upstream, c.c_hat, out=ws.denom)
                np.add(ws.denom, ab, out=ws.denom)
                np.add(ws.denom, terms.gamma_slopes, out=ws.denom)
                if propagated:
                    np.multiply(ws.upstream, terms.dx_sum, out=ws.t1)
                    np.add(ws.denom, ws.t1, out=ws.denom)
                np.multiply(numer, ws.k_cap, out=ws.t1)
                np.divide(ws.t1, ws.denom, out=ws.opt, where=c.is_sizable)
                np.sqrt(ws.opt, out=ws.opt)
                np.clip(ws.opt, c.lower, c.upper, out=x_new)
                x_new[plan.nonsizable_idx] = 0.0
                np.subtract(x_new, x, out=ws.t1)
                np.abs(ws.t1, out=ws.t1)
                np.divide(ws.t1, x, out=ws.t1, where=c.is_sizable)
                if len(plan.sizable_idx):
                    np.take(ws.t1, plan.sizable_idx, axis=0, out=ws.szbuf)
                    np.maximum.reduce(ws.szbuf, axis=0, out=ws.colmax)
                else:
                    ws.colmax.fill(0.0)
                x, x_new = x_new, x
                np.less_equal(ws.colmax, self.tolerance, out=ws.colmask)
                if not ws.colmask.any():
                    continue
                # Freeze converged columns at this pass's iterate...
                for wk in np.flatnonzero(ws.colmask):
                    k = order[wk]
                    out_x[k] = np.ascontiguousarray(x[:, wk])
                    out_passes[k] = passes
                    out_maxrel[k] = float(ws.colmax[wk])
                keep = np.flatnonzero(~ws.colmask)
                order = order[keep]
                if not order.size:
                    break
                # ...and compact the survivors into the smaller width's
                # pooled buffers (contiguity for the raw CSR kernel).
                new_ws = bws.buffers(order.size)
                new_ws.x_a[:] = x[:, keep]
                new_ws.lam[:] = lam[:, keep]
                new_ws.numer[:] = numer[:, keep]
                new_ws.alpha_beta[:] = ab[:, keep]
                # Carry the survivors' last-pass change too: if this was
                # the final allowed pass, the tail below must see their
                # true max_rel, not the fresh buffer's zeros.
                new_ws.colmax[:] = ws.colmax[keep]
                gamma = np.ascontiguousarray(
                    gamma[:, keep] if per_net else gamma[keep])
                ws = new_ws
                x, x_new = ws.x_a, ws.x_b
                lam, numer, ab = ws.lam, ws.numer, ws.alpha_beta
        # Columns that never converged stop at the pass budget, exactly
        # like the scalar loop.
        for wk, k in enumerate(order):
            out_x[k] = np.ascontiguousarray(x[:, wk])
            out_passes[k] = passes
            out_maxrel[k] = float(ws.colmax[wk]) if passes else np.inf
        return [self._finish(out_x[k], out_passes[k], out_maxrel[k])
                for k in range(total)]

    # -- reference path -----------------------------------------------------------

    def _solve_reference(self, multipliers, x0):
        """The original spelling: one engine sweep call per step."""
        engine = self.engine
        cc = engine.compiled
        coupling = engine.coupling
        lam_node = multipliers.node_multipliers()
        beta, gamma = multipliers.beta, multipliers.gamma

        x = cc.lower.copy() if x0 is None else np.asarray(x0, dtype=float).copy()
        x = cc.clip_sizes(np.where(cc.is_sizable, np.maximum(x, cc.lower), 0.0))

        sizable = cc.is_sizable
        wires = cc.is_wire
        r_hat_eff = cc.r_hat * OHM_FF_TO_PS
        numer_lam_r = lam_node * r_hat_eff

        max_rel = np.inf
        passes = 0
        while passes < self.max_passes and max_rel > self.tolerance:
            passes += 1
            caps = engine.capacitances(x)                       # S2
            upstream = engine.weighted_upstream_resistance(x, lam_node)  # S3
            cap_sum, dx_sum = coupling.node_sums(x)
            # γ may be the paper's scalar or, in the distributed-bound
            # extension, a per-net array (read at each pair's owner).
            gamma_slopes = coupling.slope_sums(x, gamma)
            if engine.mode is CouplingDelayMode.NONE:
                k_cap = caps["child_sum"] + np.where(wires, 0.5 * cc.fringe, 0.0)
                cpl_np = np.zeros_like(dx_sum)
            else:
                k_cap = caps["child_sum"] + np.where(
                    wires, 0.5 * cc.fringe + cap_sum, 0.0)
                cpl_np = dx_sum
            denom = cc.alpha + (beta + upstream) * cc.c_hat + gamma_slopes
            if engine.mode is CouplingDelayMode.PROPAGATED:
                denom = denom + upstream * cpl_np
            opt = np.zeros_like(x)
            np.divide(numer_lam_r * k_cap, denom, out=opt, where=sizable)
            np.sqrt(opt, out=opt)                               # S4
            x_new = cc.clip_sizes(np.where(sizable, opt, 0.0))
            with np.errstate(invalid="ignore"):
                rel = np.abs(x_new - x) / np.where(sizable, x, 1.0)
            max_rel = float(np.max(rel[sizable], initial=0.0))
            x = x_new
        return self._finish(x, passes, max_rel)

    def _finish(self, x, passes, max_rel):
        converged = max_rel <= self.tolerance
        if not converged and self.strict:
            raise ConvergenceError(
                f"LRS did not reach tolerance {self.tolerance} in "
                f"{self.max_passes} passes (last change {max_rel:.2e})"
            )
        return LRSResult(x=x, passes=passes, max_rel_change=max_rel,
                         converged=converged)

    # -- Lagrangian evaluation ----------------------------------------------------

    def lagrangian_value(self, x, multipliers, problem, context=None):
        """``L_{λ,β,γ}(x)`` of Theorem 4, including the eliminated-arrival
        constant ``−A0·Σ λ_sink`` (so that ``min_x L`` is the dual value).

        ``context`` is an optional
        :class:`~repro.timing.metrics.EvalContext` at the same point;
        when given, the delays, area, capacitance, and coupling totals
        already computed for the outer iteration are reused instead of
        re-running the full-circuit sweeps here.
        """
        engine = self.engine
        cc = engine.compiled
        lam_node = multipliers.node_multipliers()
        if context is not None:
            delays = context.delays
            area = context.area_um2
        else:
            delays = engine.delays(x)
            area = total_area(cc, x)
        value = area
        value += float(np.dot(lam_node, delays))
        if np.isfinite(problem.power_cap_bound_ff):
            total_cap = context.total_cap_ff if context is not None \
                else total_capacitance(cc, x)
            value += multipliers.beta * (total_cap
                                         - problem.power_cap_bound_ff)
        gamma = np.asarray(multipliers.gamma, dtype=float)
        if gamma.ndim:  # distributed per-net bounds (extension)
            net_caps = context.net_caps_ff if context is not None \
                else engine.coupling.net_caps(x)
            slack = net_caps - problem.noise_bounds_ff
            active = np.isfinite(problem.noise_bounds_ff)
            value += float(np.dot(gamma[active], slack[active]))
        elif np.isfinite(problem.noise_bound_ff):
            coupling_total = context.coupling_total_ff if context is not None \
                else engine.coupling.total(x)
            value += multipliers.gamma * (coupling_total
                                          - problem.noise_bound_ff)
        value -= problem.delay_bound_ps * multipliers.sink_flow()
        return value
