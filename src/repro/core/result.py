"""Result records for the sizing optimizers."""

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class IterationRecord:
    """Diagnostics of one OGWS outer iteration (paper Fig. 9 loop body)."""

    iteration: int
    area_um2: float
    delay_ps: float
    noise_pf: float
    power_mw: float
    dual_value: float
    paper_gap: float        # |Σα·x − L(x)| / Σα·x  (stop test A7)
    duality_gap: float      # (best feasible area − best dual) / area
    feasible: bool
    lrs_passes: int
    step: float
    beta: float
    gamma: float


@dataclasses.dataclass
class SizingResult:
    """Outcome of an OGWS run.

    ``x`` is the reported sizing (the best feasible iterate when one
    exists, else the final iterate), with ``metrics`` evaluated there.
    ``history`` holds one :class:`IterationRecord` per outer iteration
    when recording was enabled.
    """

    x: np.ndarray
    metrics: object
    initial_metrics: object
    problem: object
    converged: bool
    iterations: int
    dual_value: float
    duality_gap: float
    feasible: bool
    history: list
    runtime_s: float
    memory_bytes: int
    multipliers: object = None
    #: Full-circuit candidate evaluations spent inside the primal-repair
    #: bisection (each one is lazily short-circuited on the first
    #: violated constraint; see ``OGWSOptimizer._repair``).
    repair_evals: int = 0

    @property
    def improvements(self):
        """Table 1's Impr(%) entries for this run."""
        return self.metrics.improvements_over(self.initial_metrics)

    def summary(self):
        """One-paragraph human-readable outcome (examples print this)."""
        imp = self.improvements
        status = "converged" if self.converged else "iteration budget reached"
        feas = "feasible" if self.feasible else "INFEASIBLE"
        return (
            f"{status} after {self.iterations} iterations ({feas}); "
            f"duality gap {self.duality_gap * 100.0:.2f}%; "
            f"area {self.initial_metrics.area_um2:.0f} -> {self.metrics.area_um2:.0f} um^2 "
            f"({imp['area']:.1f}%), noise {self.initial_metrics.noise_pf:.2f} -> "
            f"{self.metrics.noise_pf:.2f} pF ({imp['noise']:.1f}%), "
            f"delay {self.initial_metrics.delay_ps:.0f} -> {self.metrics.delay_ps:.0f} ps "
            f"({imp['delay']:.1f}%), power {self.initial_metrics.power_mw:.2f} -> "
            f"{self.metrics.power_mw:.2f} mW ({imp['power']:.1f}%), "
            f"runtime {self.runtime_s:.1f} s, memory {self.memory_bytes / 1048576.0:.2f} MB"
        )
