"""The OGWS optimizer — Optimal Gate and Wire Sizing (paper Fig. 9).

Outer loop solving the Lagrangian dual ``LDP``:

    A1  initialize λ (flow-conserving), β, γ > 0
    A2  aggregate λ_i = Σ in-edge multipliers
    A3  solve the subproblem (LRS) and compute arrival times
    A4  step the multipliers along the constraint residuals
    A5  project λ back onto the Theorem 3 flow-conservation set
    A7  stop when the area–Lagrangian gap is inside the error bound

Because problem ``PP`` is convex (posynomial under log transform), the
dual optimum equals the primal optimum (Theorem 7: "OGWS converges to
the global optimal"); the duality gap measured each iteration is
therefore a true optimality certificate.  The paper runs to "precision
of within 1% error"; ``tolerance=0.01`` is the default here too.

Feasibility: intermediate LRS iterates generally violate constraints
(the dual approaches from below).  The optimizer tracks the best
*feasible* iterate (within ``feasibility_tolerance``) and reports it;
the final iterate is reported (flagged infeasible) if none was found.

The loop body is decomposed into :meth:`OGWSOptimizer.start` /
:meth:`~OGWSOptimizer.step` / :meth:`~OGWSOptimizer.finish` so that
:func:`run_lockstep` can advance K optimizers sharing one engine in
lockstep — one *batched* LRS solve, delay/arrival sweep, and Theorem 3
projection per outer iteration, everything else per column.  A lockstep
run is bit-identical per scenario to running each optimizer alone
(see :mod:`repro.core.session`, which builds scenario batches on top).
"""

import time

import numpy as np

from repro.core.lrs import LagrangianSubproblemSolver
from repro.core.multipliers import MultiplierState
from repro.core.problem import SizingProblem
from repro.core.result import IterationRecord, SizingResult
from repro.core.subgradient import MultiplicativeUpdate, SubgradientUpdate
from repro.timing.elmore import CouplingDelayMode
from repro.timing.metrics import EvalContext, evaluate_metrics
from repro.utils.errors import ValidationError
from repro.utils.memory import MemoryLedger
from repro.utils.units import FF_PER_PF


class _RunState:
    """Mutable per-run state of one OGWS execution (the lockstep unit)."""

    __slots__ = ("mult", "initial_metrics", "history", "best_dual",
                 "best_feasible_x", "best_feasible_area", "x", "iteration",
                 "converged", "done", "paper_gap", "started", "repair_evals",
                 "evaluated")

    def __init__(self):
        self.mult = None
        self.initial_metrics = None
        self.history = []
        self.best_dual = -np.inf
        self.best_feasible_x = None
        self.best_feasible_area = np.inf
        self.x = None
        self.iteration = 0
        self.converged = False
        self.done = False
        self.paper_gap = np.inf
        self.started = 0.0
        self.repair_evals = 0
        #: ``(context, dual, feasible)`` handoff from step_eval to
        #: step_record within one iteration; None between iterations.
        self.evaluated = None


class OGWSOptimizer:
    """Lagrangian-dual gate/wire sizing (paper Fig. 9).

    Parameters
    ----------
    engine:
        :class:`~repro.timing.elmore.ElmoreEngine` over the target
        circuit (with its coupling set and delay mode).
    problem:
        :class:`~repro.core.problem.SizingProblem` bounds.
    update:
        ``"multiplicative"`` (default) or ``"subgradient"`` — see
        :mod:`repro.core.subgradient` — or a ready update object.
    tolerance:
        Relative stop threshold for step A7 (paper: 1%).
    feasibility_tolerance:
        Relative constraint slack accepted as "feasible" (default 1e-3).
    max_iterations:
        Outer iteration budget.
    x_init:
        Sizes whose metrics define the "Init" row.  Default: every
        component at its *upper* bound — the unsized starting point that
        reproduces Table 1's Init column (DESIGN.md §3).
    warm_start_lrs:
        Seed each LRS call with the previous iterate (same unique
        optimum as the paper's cold start, fewer passes).
    """

    def __init__(self, engine, problem, update="multiplicative", tolerance=0.01,
                 feasibility_tolerance=1e-3, max_iterations=200, x_init=None,
                 lrs=None, warm_start_lrs=True, record_history=True,
                 initial_metrics=None):
        self.engine = engine
        self.problem = problem
        self.update = self._make_update(update)
        if tolerance <= 0:
            raise ValidationError("tolerance must be positive")
        self.tolerance = float(tolerance)
        self.feasibility_tolerance = float(feasibility_tolerance)
        self.max_iterations = int(max_iterations)
        self.lrs = lrs or LagrangianSubproblemSolver(engine)
        self.warm_start_lrs = bool(warm_start_lrs)
        self.record_history = bool(record_history)
        compiled = engine.compiled
        self.x_init = compiled.default_sizes(np.inf) if x_init is None else np.asarray(
            x_init, dtype=float)
        # Optional precomputed metrics at x_init (identical values to
        # evaluating here); a SolverSession shares one evaluation across
        # every scenario of an engine group.
        self._initial_metrics = initial_metrics

    @staticmethod
    def _make_update(update):
        if isinstance(update, str):
            if update == "multiplicative":
                return MultiplicativeUpdate()
            if update == "subgradient":
                return SubgradientUpdate()
            raise ValidationError(f"unknown update rule {update!r}")
        if not hasattr(update, "apply"):
            raise ValidationError("update must provide .apply(...)")
        return update

    # -- main loop ------------------------------------------------------------------

    def run(self, multipliers=None):
        """Execute Fig. 9 and return a :class:`SizingResult`."""
        state = self.start(multipliers)
        while not state.done:
            x0 = state.x if (self.warm_start_lrs and state.x is not None) \
                else None
            lrs_result = self.lrs.solve(state.mult, x0=x0)     # A2 + A3
            self.step(state, lrs_result)
        return self.finish(state)

    def start(self, multipliers=None):
        """A1: initial metrics and a flow-conserving multiplier start."""
        state = _RunState()
        state.started = time.perf_counter()
        state.initial_metrics = self._initial_metrics \
            if self._initial_metrics is not None \
            else evaluate_metrics(self.engine, self.x_init)
        state.mult = multipliers.copy() if multipliers is not None else \
            MultiplierState.initial(self.engine.compiled,
                                    backend=self.engine.backend)
        state.done = self.max_iterations < 1
        return state

    def step(self, state, lrs_result, context=None, project=True):
        """One Fig. 9 iteration body after the LRS solve (A3 done).

        ``context`` optionally supplies a pre-seeded
        :class:`~repro.timing.metrics.EvalContext` at ``lrs_result.x``
        (the lockstep driver injects batched delay/arrival columns);
        ``project=False`` defers the A5 projection to the caller.
        Decomposed into :meth:`step_eval` (everything before A4), the
        A4/A5 multiplier step here, and :meth:`step_record` — the
        lockstep driver calls the two halves directly, with one batched
        A4 and one batched projection for all columns in between.
        Returns ``True`` once the run is finished.
        """
        context = self.step_eval(state, lrs_result, context=context)
        metrics = context.metrics
        step = self.update.apply(                              # A4
            state.mult, state.iteration, context.arrival, context.delays,
            self.problem, power_cap=metrics.total_cap_ff,
            noise=metrics.noise_pf * FF_PER_PF,
            engine=self.engine, x=lrs_result.x,
        )
        if project:
            state.mult.project(backend=self.engine.backend)    # A5
        return self.step_record(state, lrs_result, step)

    def step_eval(self, state, lrs_result, context=None):
        """Fig. 9 iteration body between A3 and A4: evaluate the iterate.

        Advances the iteration counter, evaluates the point (dual bound,
        A7 gap quantity, feasibility with primal repair), and leaves the
        ``(context, dual, feasible)`` handoff on ``state.evaluated`` for
        :meth:`step_record`.  Returns the point's ``EvalContext`` so the
        caller can run A4 from its arrival/delay columns.
        """
        engine = self.engine
        problem = self.problem
        state.iteration += 1
        x = lrs_result.x
        state.x = x
        # One evaluation context per iterate: the arrival sweep, the
        # Table 1 metrics, and the dual value below all share it, so
        # no full-circuit quantity is computed twice at this point.
        if context is None:
            context = EvalContext(engine, x)
        metrics = context.metrics
        dual = self.lrs.lagrangian_value(x, state.mult, problem,
                                         context=context)
        state.best_dual = max(state.best_dual, dual)
        area = metrics.area_um2
        state.paper_gap = abs(area - dual) / max(area, 1e-30)  # A7 quantity

        feasible = self._is_feasible(metrics, x)
        if feasible and area < state.best_feasible_area:
            state.best_feasible_area = area
            state.best_feasible_x = x.copy()
        elif not feasible and state.best_feasible_x is not None:
            # Primal repair: the dual iterate usually rides the tight
            # constraint from the violating side.  PP's feasible set
            # is convex in log-sizes (posynomial constraints), so a
            # log-space blend toward the feasible anchor crosses the
            # boundary exactly once — bisect to the closest feasible
            # blend and keep it if it improves the primal.
            repaired, repaired_metrics = self._repair(
                x, state.best_feasible_x, state=state)
            if repaired is not None and \
                    repaired_metrics.area_um2 < state.best_feasible_area:
                state.best_feasible_area = repaired_metrics.area_um2
                state.best_feasible_x = repaired
        state.evaluated = (context, dual, feasible)
        return context

    def step_record(self, state, lrs_result, step):
        """Fig. 9 iteration tail after A4/A5: history and the A7 stop rule.

        ``step`` is the step size μ the multiplier update returned.
        Consumes the :meth:`step_eval` handoff; the duality gap is
        recomputed here from the best-feasible/best-dual pair, which
        A4/A5 do not touch.  Returns ``True`` once the run is finished.
        """
        context, dual, feasible = state.evaluated
        state.evaluated = None
        metrics = context.metrics
        gap = self._duality_gap(state.best_feasible_area, state.best_dual)
        if self.record_history:
            state.history.append(IterationRecord(
                iteration=state.iteration, area_um2=metrics.area_um2,
                delay_ps=metrics.delay_ps,
                noise_pf=metrics.noise_pf, power_mw=metrics.power_mw,
                dual_value=dual, paper_gap=state.paper_gap, duality_gap=gap,
                feasible=feasible, lrs_passes=lrs_result.passes, step=step,
                beta=state.mult.beta, gamma=state.mult.gamma,
            ))
        # A7: stop once the certified duality gap (best feasible area
        # vs best dual bound) is inside the error bound.
        if gap <= self.tolerance:
            state.converged = True
            state.done = True
        elif state.iteration >= self.max_iterations:
            state.done = True
        return state.done

    def finish(self, state):
        """Assemble the :class:`SizingResult` for a completed run."""
        feasible_found = state.best_feasible_x is not None
        final_x = state.best_feasible_x if feasible_found else state.x
        final_metrics = evaluate_metrics(self.engine, final_x)
        runtime = time.perf_counter() - state.started
        # With no feasible iterate the dual bound certifies nothing about
        # the reported point; flag that with an infinite gap.
        final_gap = self._duality_gap(final_metrics.area_um2,
                                      state.best_dual) \
            if feasible_found else np.inf
        return SizingResult(
            x=final_x,
            metrics=final_metrics,
            initial_metrics=state.initial_metrics,
            problem=self.problem,
            converged=state.converged,
            iterations=state.iteration,
            dual_value=state.best_dual,
            duality_gap=final_gap,
            feasible=feasible_found,
            history=state.history,
            runtime_s=runtime,
            memory_bytes=self.memory_estimate(state.mult),
            multipliers=state.mult,
            repair_evals=state.repair_evals,
        )

    @staticmethod
    def _duality_gap(primal_area, dual):
        if not np.isfinite(primal_area) or primal_area <= 0:
            return np.inf
        return max(0.0, (primal_area - dual) / primal_area)

    def _is_feasible(self, metrics, x):
        """Feasibility under the problem's own notion.

        Distributed-bound problems expose ``is_feasible_at`` (they need
        per-net crosstalk, not just the total); the paper's scalar
        problem checks the three aggregate metrics.
        """
        check_at = getattr(self.problem, "is_feasible_at", None)
        if check_at is not None:
            return check_at(self.engine, x, metrics,
                            tolerance=self.feasibility_tolerance)
        return self.problem.is_feasible(metrics, self.feasibility_tolerance)

    def _feasible_lazy(self, context, x):
        """:meth:`_is_feasible` evaluated lazily through an ``EvalContext``.

        Checks the constraints in the same order as
        ``SizingProblem.violations`` (delay, noise, power) and
        short-circuits on the first violation, so an infeasible repair
        candidate rejected on delay never runs its coupling or
        capacitance sweeps.  Each comparison reproduces the eager
        spelling bit-for-bit (including the ``noise_pf`` unit
        round-trip), so the accepted set is unchanged.
        """
        check_at = getattr(self.problem, "is_feasible_at", None)
        if check_at is not None:
            return check_at(self.engine, x, context.metrics,
                            tolerance=self.feasibility_tolerance)
        problem = self.problem
        # The inline short-circuit replays SizingProblem.is_feasible
        # specifically; a problem type overriding it keeps its own
        # notion of feasibility (at eager-evaluation cost).
        if type(problem).is_feasible is not SizingProblem.is_feasible:
            return self._is_feasible(context.metrics, x)
        tol = self.feasibility_tolerance
        if context.circuit_delay_ps / problem.delay_bound_ps - 1.0 > tol:
            return False
        noise_pf = context.coupling_total_ff / FF_PER_PF
        if noise_pf * FF_PER_PF / problem.noise_bound_ff - 1.0 > tol:
            return False
        return (context.total_cap_ff / problem.power_cap_bound_ff - 1.0
                <= tol)

    def _repair(self, x, x_feasible, bisections=7, state=None):
        """Largest-t feasible log-blend between ``x_feasible`` and ``x``.

        Returns ``(sizes, metrics)`` of the closest feasible point toward
        the (infeasible) dual iterate, or ``(None, None)`` if even tiny
        steps leave feasibility (anchor sits on the boundary).  Each
        bisection step evaluates its candidate through a lazy
        :class:`~repro.timing.metrics.EvalContext` — quantities a
        violated earlier constraint makes irrelevant are never computed,
        and full metrics materialize only for feasible candidates.
        ``state`` (a :class:`_RunState`) accumulates the
        ``repair_evals`` diagnostic counter.
        """
        engine = self.engine
        cc = engine.compiled
        mask = cc.is_sizable
        log_feas = np.log(x_feasible[mask])
        log_x = np.log(np.maximum(x[mask], 1e-300))

        def candidate(t):
            out = np.zeros(cc.num_nodes)
            out[mask] = np.exp((1.0 - t) * log_feas + t * log_x)
            return cc.clip_sizes(out)

        best = None
        best_metrics = None
        lo, hi = 0.0, 1.0
        for _ in range(bisections):
            mid = 0.5 * (lo + hi)
            cand = candidate(mid)
            context = EvalContext(engine, cand)
            if state is not None:
                state.repair_evals += 1
            if self._feasible_lazy(context, cand):
                best, best_metrics = cand, context.metrics
                lo = mid
            else:
                hi = mid
        return best, best_metrics

    # -- memory accounting (Figure 10a) ----------------------------------------------

    def memory_estimate(self, multipliers=None):
        """Bytes of algorithm-owned storage (compiled circuit, coupling,
        multipliers, and the solver's per-node work arrays).

        This is the quantity plotted in the Figure 10(a) reproduction —
        deliberately an *accounting* of required arrays (like the paper's
        C implementation report), not the Python interpreter footprint.
        """
        ledger = MemoryLedger()
        ledger.register("compiled", self.engine.compiled.nbytes)
        ledger.register("coupling", self.engine.coupling.nbytes)
        workspace = getattr(self.engine, "_workspace", None)
        if workspace is not None:
            # Kernel backend: the preallocated sweep workspace plus the
            # precompiled level segments are the solver's working set.
            ledger.register("workspace", workspace.nbytes)
            ledger.register("sweep_plan", workspace.plan.nbytes)
        else:
            n = self.engine.compiled.num_nodes
            # Reference sweeps keep ~12 double arrays of node length alive.
            ledger.register("work_arrays", 12 * n * 8)
        if multipliers is not None:
            ledger.register("multipliers", multipliers.nbytes)
        return ledger.total_bytes


# -- lockstep multi-scenario driver ---------------------------------------------


def _batched_delays_arrival(engine, x_cols, bws):
    """Elmore delays and arrival times for ``(n, K)`` column-stacked sizes.

    Mirrors ``ElmoreEngine._delays_kernel`` + ``arrival_times`` exactly
    per column (same kernel calls on matrix buffers), so the columns are
    bit-identical to the scalar sweeps at the same sizes.
    """
    from repro.timing import kernels

    cc = engine.compiled
    plan = cc.sweep_plan()
    ws = bws.buffers(x_cols.shape[1])
    c = plan.cols()
    propagated = engine.mode is CouplingDelayMode.PROPAGATED
    cpl = None if engine.mode is CouplingDelayMode.NONE else \
        engine.coupling.node_coupling_caps(x_cols)
    kernels.s2_source_terms(plan, cc, x_cols, cpl, propagated, ws.cself,
                            ws.source_terms, ws.t1)
    kernels.child_sum_sweep(plan, ws.source_terms, ws.child_sum, ws)
    np.multiply(ws.cself, 0.5, out=ws.t1)
    if cpl is not None:
        np.add(ws.t1, cpl, out=ws.t1)
    np.multiply(ws.t1, c.wire_mask_f, out=ws.t1)
    np.add(ws.t1, ws.child_sum, out=ws.t1)
    np.divide(c.r_hat_eff, x_cols, out=ws.r_eff, where=c.is_sizable)
    delays = ws.r_eff * ws.t1
    if engine.arrival_offsets is not None:
        delays += engine.arrival_offsets[:, None]
    arrival = np.empty_like(delays)
    kernels.arrival_sweep(plan, delays, arrival, ws)
    return delays, arrival


def run_lockstep(optimizers, batch=None):
    """Advance K OGWS runs sharing one engine in lockstep.

    Each outer iteration performs **one batched LRS solve** for every
    still-running optimizer (CSR matvec → matmat over scenario columns,
    per-column convergence freezing — see
    :meth:`LagrangianSubproblemSolver.solve_batch`), one batched
    delay/arrival sweep plus one batched metrics-input sweep (coupling
    totals, total capacitance, area) seeding per-column
    ``EvalContext``\\ s, one **batched A4** per group of columns whose
    update rules share a :meth:`~repro.core.subgradient.
    MultiplicativeUpdate.batch_key` (single edge-terms pass and
    broadcast multiplier arithmetic; unknown rules fall back to scalar
    ``apply``), and one batched Theorem 3 projection.  No Python loop
    over nodes, edges, or (on the batched paths) scenarios remains in
    the iteration.  Optimizers retire from the batch as their own stop
    criteria fire.  Results are bit-identical to ``[opt.run() for opt
    in optimizers]`` — the batched kernels replay the scalar arithmetic
    per column exactly.

    ``batch`` optionally supplies a reusable
    :class:`~repro.timing.kernels.BatchWorkspace`.  Falls back to
    sequential runs for a single optimizer or a non-kernel backend.
    """
    optimizers = list(optimizers)
    if not optimizers:
        return []
    engine = optimizers[0].engine
    solver = optimizers[0].lrs
    compatible = all(
        opt.engine is engine
        and opt.lrs.tolerance == solver.tolerance
        and opt.lrs.max_passes == solver.max_passes
        and opt.lrs.strict == solver.strict
        for opt in optimizers)
    if not compatible:
        raise ValidationError(
            "lockstep optimizers must share one engine and LRS settings")
    if len(optimizers) == 1 or engine.backend != "kernel":
        return [opt.run() for opt in optimizers]
    from repro.timing import kernels

    plan = engine.compiled.sweep_plan()
    bws = batch if batch is not None else kernels.BatchWorkspace(plan)
    states = [opt.start() for opt in optimizers]
    live = [k for k in range(len(optimizers)) if not states[k].done]
    while live:
        mults = [states[k].mult for k in live]
        x0s = [states[k].x
               if (optimizers[k].warm_start_lrs and states[k].x is not None)
               else None for k in live]
        results = solver.solve_batch(mults, x0s, batch=bws)
        x_cols = np.column_stack([r.x for r in results])
        delays, arrival = _batched_delays_arrival(engine, x_cols, bws)
        # Metrics tail, batched: every column's coupling total in one
        # pair sweep; area and power-capacitance stay per-column dot
        # products over the contiguous scenario vector — the exact
        # spelling (and bits) of the lazy EvalContext properties.
        totals = engine.coupling.totals_batch(x_cols)
        contexts = []
        for j, k in enumerate(live):
            x = results[j].x
            context = EvalContext(engine, x).seed(
                delays=delays[:, j], arrival=arrival[:, j],
                coupling_total_ff=float(totals[j]),
                total_cap_ff=float(np.dot(plan.c_hat_sizable, x)
                                   + plan.fringe_total),
                area_um2=float(np.dot(plan.alpha_sizable, x)))
            contexts.append(context)
            optimizers[k].step_eval(states[k], results[j], context=context)
        # A4: one batched update per group of columns running literally
        # the same multiplier arithmetic; singletons and unknown rules
        # take the scalar path.
        steps = [None] * len(live)
        groups = {}
        for j, k in enumerate(live):
            key = getattr(optimizers[k].update, "batch_key", lambda: None)()
            groups.setdefault(key if key is not None else ("", j), []).append(j)
        for key, js in groups.items():
            if len(js) == 1:
                j = js[0]
                k = live[j]
                opt = optimizers[k]
                metrics = contexts[j].metrics
                steps[j] = opt.update.apply(
                    states[k].mult, states[k].iteration, contexts[j].arrival,
                    contexts[j].delays, opt.problem,
                    power_cap=metrics.total_cap_ff,
                    noise=metrics.noise_pf * FF_PER_PF,
                    engine=engine, x=results[j].x)
                continue
            mus = optimizers[live[js[0]]].update.apply_batch(
                [states[live[j]].mult for j in js],
                [states[live[j]].iteration for j in js],
                arrival[:, js], delays[:, js],
                [optimizers[live[j]].problem for j in js],
                [contexts[j].metrics.total_cap_ff for j in js],
                [contexts[j].metrics.noise_pf * FF_PER_PF for j in js])
            for j, mu in zip(js, mus):
                steps[j] = mu
        # A5 for every column stepped this iteration, one batched sweep.
        mults = [states[k].mult for k in live]
        lam_cols = MultiplierState.stack_lam(mults)
        kernels.project_sweep(plan, lam_cols)
        MultiplierState.unstack_lam(mults, lam_cols)
        for j, k in enumerate(live):
            optimizers[k].step_record(states[k], results[j], steps[j])
        live = [k for k in live if not states[k].done]
    return [opt.finish(state) for opt, state in zip(optimizers, states)]
