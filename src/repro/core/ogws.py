"""The OGWS optimizer — Optimal Gate and Wire Sizing (paper Fig. 9).

Outer loop solving the Lagrangian dual ``LDP``:

    A1  initialize λ (flow-conserving), β, γ > 0
    A2  aggregate λ_i = Σ in-edge multipliers
    A3  solve the subproblem (LRS) and compute arrival times
    A4  step the multipliers along the constraint residuals
    A5  project λ back onto the Theorem 3 flow-conservation set
    A7  stop when the area–Lagrangian gap is inside the error bound

Because problem ``PP`` is convex (posynomial under log transform), the
dual optimum equals the primal optimum (Theorem 7: "OGWS converges to
the global optimal"); the duality gap measured each iteration is
therefore a true optimality certificate.  The paper runs to "precision
of within 1% error"; ``tolerance=0.01`` is the default here too.

Feasibility: intermediate LRS iterates generally violate constraints
(the dual approaches from below).  The optimizer tracks the best
*feasible* iterate (within ``feasibility_tolerance``) and reports it;
the final iterate is reported (flagged infeasible) if none was found.
"""

import time

import numpy as np

from repro.core.lrs import LagrangianSubproblemSolver
from repro.core.multipliers import MultiplierState
from repro.core.result import IterationRecord, SizingResult
from repro.core.subgradient import MultiplicativeUpdate, SubgradientUpdate
from repro.timing.metrics import EvalContext, evaluate_metrics
from repro.utils.errors import ValidationError
from repro.utils.memory import MemoryLedger
from repro.utils.units import FF_PER_PF


class OGWSOptimizer:
    """Lagrangian-dual gate/wire sizing (paper Fig. 9).

    Parameters
    ----------
    engine:
        :class:`~repro.timing.elmore.ElmoreEngine` over the target
        circuit (with its coupling set and delay mode).
    problem:
        :class:`~repro.core.problem.SizingProblem` bounds.
    update:
        ``"multiplicative"`` (default) or ``"subgradient"`` — see
        :mod:`repro.core.subgradient` — or a ready update object.
    tolerance:
        Relative stop threshold for step A7 (paper: 1%).
    feasibility_tolerance:
        Relative constraint slack accepted as "feasible" (default 1e-3).
    max_iterations:
        Outer iteration budget.
    x_init:
        Sizes whose metrics define the "Init" row.  Default: every
        component at its *upper* bound — the unsized starting point that
        reproduces Table 1's Init column (DESIGN.md §3).
    warm_start_lrs:
        Seed each LRS call with the previous iterate (same unique
        optimum as the paper's cold start, fewer passes).
    """

    def __init__(self, engine, problem, update="multiplicative", tolerance=0.01,
                 feasibility_tolerance=1e-3, max_iterations=200, x_init=None,
                 lrs=None, warm_start_lrs=True, record_history=True):
        self.engine = engine
        self.problem = problem
        self.update = self._make_update(update)
        if tolerance <= 0:
            raise ValidationError("tolerance must be positive")
        self.tolerance = float(tolerance)
        self.feasibility_tolerance = float(feasibility_tolerance)
        self.max_iterations = int(max_iterations)
        self.lrs = lrs or LagrangianSubproblemSolver(engine)
        self.warm_start_lrs = bool(warm_start_lrs)
        self.record_history = bool(record_history)
        compiled = engine.compiled
        self.x_init = compiled.default_sizes(np.inf) if x_init is None else np.asarray(
            x_init, dtype=float)

    @staticmethod
    def _make_update(update):
        if isinstance(update, str):
            if update == "multiplicative":
                return MultiplicativeUpdate()
            if update == "subgradient":
                return SubgradientUpdate()
            raise ValidationError(f"unknown update rule {update!r}")
        if not hasattr(update, "apply"):
            raise ValidationError("update must provide .apply(...)")
        return update

    # -- main loop ------------------------------------------------------------------

    def run(self, multipliers=None):
        """Execute Fig. 9 and return a :class:`SizingResult`."""
        engine = self.engine
        cc = engine.compiled
        problem = self.problem
        start = time.perf_counter()

        initial_metrics = evaluate_metrics(engine, self.x_init)
        mult = multipliers.copy() if multipliers is not None else \
            MultiplierState.initial(cc, backend=engine.backend)

        history = []
        best_dual = -np.inf
        best_feasible_x = None
        best_feasible_area = np.inf
        x = None
        converged = False
        paper_gap = np.inf
        iteration = 0

        for iteration in range(1, self.max_iterations + 1):
            x0 = x if (self.warm_start_lrs and x is not None) else None
            lrs_result = self.lrs.solve(mult, x0=x0)           # A2 + A3
            x = lrs_result.x
            # One evaluation context per iterate: the arrival sweep, the
            # Table 1 metrics, and the dual value below all share it, so
            # no full-circuit quantity is computed twice at this point.
            context = EvalContext(engine, x)
            delays = context.delays
            arrival = context.arrival

            metrics = context.metrics
            dual = self.lrs.lagrangian_value(x, mult, problem, context=context)
            best_dual = max(best_dual, dual)
            area = metrics.area_um2
            paper_gap = abs(area - dual) / max(area, 1e-30)    # A7 quantity

            feasible = self._is_feasible(metrics, x)
            if feasible and area < best_feasible_area:
                best_feasible_area = area
                best_feasible_x = x.copy()
            elif not feasible and best_feasible_x is not None:
                # Primal repair: the dual iterate usually rides the tight
                # constraint from the violating side.  PP's feasible set
                # is convex in log-sizes (posynomial constraints), so a
                # log-space blend toward the feasible anchor crosses the
                # boundary exactly once — bisect to the closest feasible
                # blend and keep it if it improves the primal.
                repaired, repaired_metrics = self._repair(x, best_feasible_x)
                if repaired is not None and \
                        repaired_metrics.area_um2 < best_feasible_area:
                    best_feasible_area = repaired_metrics.area_um2
                    best_feasible_x = repaired

            gap = self._duality_gap(best_feasible_area, best_dual)
            step = self.update.apply(                          # A4
                mult, iteration, arrival, delays, problem,
                power_cap=metrics.total_cap_ff,
                noise=metrics.noise_pf * FF_PER_PF,
                engine=engine, x=x,
            )
            mult.project(backend=engine.backend)               # A5

            if self.record_history:
                history.append(IterationRecord(
                    iteration=iteration, area_um2=area, delay_ps=metrics.delay_ps,
                    noise_pf=metrics.noise_pf, power_mw=metrics.power_mw,
                    dual_value=dual, paper_gap=paper_gap, duality_gap=gap,
                    feasible=feasible, lrs_passes=lrs_result.passes, step=step,
                    beta=mult.beta, gamma=mult.gamma,
                ))
            # A7: stop once the certified duality gap (best feasible area
            # vs best dual bound) is inside the error bound.
            if gap <= self.tolerance:
                converged = True
                break

        feasible_found = best_feasible_x is not None
        final_x = best_feasible_x if feasible_found else x
        final_metrics = evaluate_metrics(engine, final_x)
        runtime = time.perf_counter() - start
        # With no feasible iterate the dual bound certifies nothing about
        # the reported point; flag that with an infinite gap.
        final_gap = self._duality_gap(final_metrics.area_um2, best_dual) \
            if feasible_found else np.inf
        return SizingResult(
            x=final_x,
            metrics=final_metrics,
            initial_metrics=initial_metrics,
            problem=problem,
            converged=converged,
            iterations=iteration,
            dual_value=best_dual,
            duality_gap=final_gap,
            feasible=feasible_found,
            history=history,
            runtime_s=runtime,
            memory_bytes=self.memory_estimate(mult),
            multipliers=mult,
        )

    @staticmethod
    def _duality_gap(primal_area, dual):
        if not np.isfinite(primal_area) or primal_area <= 0:
            return np.inf
        return max(0.0, (primal_area - dual) / primal_area)

    def _is_feasible(self, metrics, x):
        """Feasibility under the problem's own notion.

        Distributed-bound problems expose ``is_feasible_at`` (they need
        per-net crosstalk, not just the total); the paper's scalar
        problem checks the three aggregate metrics.
        """
        check_at = getattr(self.problem, "is_feasible_at", None)
        if check_at is not None:
            return check_at(self.engine, x, metrics,
                            tolerance=self.feasibility_tolerance)
        return self.problem.is_feasible(metrics, self.feasibility_tolerance)

    def _repair(self, x, x_feasible, bisections=7):
        """Largest-t feasible log-blend between ``x_feasible`` and ``x``.

        Returns ``(sizes, metrics)`` of the closest feasible point toward
        the (infeasible) dual iterate, or ``(None, None)`` if even tiny
        steps leave feasibility (anchor sits on the boundary).
        """
        engine = self.engine
        cc = engine.compiled
        mask = cc.is_sizable
        log_feas = np.log(x_feasible[mask])
        log_x = np.log(np.maximum(x[mask], 1e-300))

        def candidate(t):
            out = np.zeros(cc.num_nodes)
            out[mask] = np.exp((1.0 - t) * log_feas + t * log_x)
            return cc.clip_sizes(out)

        best = None
        best_metrics = None
        lo, hi = 0.0, 1.0
        for _ in range(bisections):
            mid = 0.5 * (lo + hi)
            cand = candidate(mid)
            metrics = evaluate_metrics(engine, cand)
            if self._is_feasible(metrics, cand):
                best, best_metrics = cand, metrics
                lo = mid
            else:
                hi = mid
        return best, best_metrics

    # -- memory accounting (Figure 10a) ----------------------------------------------

    def memory_estimate(self, multipliers=None):
        """Bytes of algorithm-owned storage (compiled circuit, coupling,
        multipliers, and the solver's per-node work arrays).

        This is the quantity plotted in the Figure 10(a) reproduction —
        deliberately an *accounting* of required arrays (like the paper's
        C implementation report), not the Python interpreter footprint.
        """
        ledger = MemoryLedger()
        ledger.register("compiled", self.engine.compiled.nbytes)
        ledger.register("coupling", self.engine.coupling.nbytes)
        workspace = getattr(self.engine, "_workspace", None)
        if workspace is not None:
            # Kernel backend: the preallocated sweep workspace plus the
            # precompiled level segments are the solver's working set.
            ledger.register("workspace", workspace.nbytes)
            ledger.register("sweep_plan", workspace.plan.nbytes)
        else:
            n = self.engine.compiled.num_nodes
            # Reference sweeps keep ~12 double arrays of node length alive.
            ledger.register("work_arrays", 12 * n * 8)
        if multipliers is not None:
            ledger.register("multipliers", multipliers.nbytes)
        return ledger.total_bytes
