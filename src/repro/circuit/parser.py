"""ISCAS85/ISCAS89 ``.bench`` netlist reader.

The paper evaluates on the ISCAS85 suite, which is distributed in the
``.bench`` format::

    INPUT(1)
    OUTPUT(22)
    10 = NAND(1, 3)

:func:`load_bench` turns such a file into a :class:`Circuit`: primary
inputs become drivers, each assignment becomes a gate, and every
connection gets a wire whose length is drawn from a seeded distribution
(netlists carry no geometry, so lengths are a declared substitution — see
DESIGN.md §3).  Sequential elements (``DFF``) are rejected by default
because the paper optimizes the combinational part only; pass
``dff_as_buffer=True`` to cut the sequential loop the usual way (treat the
flop as a buffer fed by a pseudo-input boundary is *not* modeled — the
flop simply becomes a combinational buffer, which is only sound for
acyclic netlists).
"""

import pathlib
import re

from repro.circuit.builder import CircuitBuilder
from repro.tech import Technology
from repro.utils.errors import CircuitError
from repro.utils.rng import make_rng

_SUPPORTED = {"and", "or", "nand", "nor", "xor", "xnor", "not", "buf", "buff"}

_ASSIGN_RE = re.compile(r"^\s*(\S+)\s*=\s*([A-Za-z][A-Za-z0-9]*)\s*\(([^)]*)\)\s*$")
_IO_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)\s*$", re.IGNORECASE)


def load_bench(path, tech=None, seed=0, wire_length_range=(50.0, 300.0),
               dff_as_buffer=False, name=None):
    """Parse the ``.bench`` file at ``path`` into a :class:`Circuit`."""
    path = pathlib.Path(path)
    text = path.read_text()
    return load_bench_text(text, tech=tech, seed=seed,
                           wire_length_range=wire_length_range,
                           dff_as_buffer=dff_as_buffer,
                           name=name or path.stem)


def load_bench_text(text, tech=None, seed=0, wire_length_range=(50.0, 300.0),
                    dff_as_buffer=False, name="bench"):
    """Parse ``.bench`` source text into a :class:`Circuit`.

    Assignments may appear in any order; they are topologically sorted
    before construction.  Raises :class:`CircuitError` on undefined
    signals, unsupported gate types, combinational cycles, or duplicate
    definitions.
    """
    inputs, outputs, assigns = _parse_lines(text, dff_as_buffer)
    order = _topo_order(inputs, assigns)

    rng = make_rng(seed)
    lo, hi = wire_length_range
    if not (0 < lo <= hi):
        raise CircuitError("wire_length_range must satisfy 0 < lo <= hi")

    builder = CircuitBuilder(tech=tech or Technology.dac99(), name=name)
    refs = {sig: builder.add_input(name=f"in:{sig}") for sig in inputs}
    for sig in order:
        fn, operands = assigns[sig]
        lengths = rng.uniform(lo, hi, size=len(operands)).tolist()
        refs[sig] = builder.add_gate(fn, [refs[op] for op in operands],
                                     name=f"gate:{sig}", wire_lengths=lengths)
    for sig in outputs:
        if sig not in refs:
            raise CircuitError(f"OUTPUT({sig}) references an undefined signal")
        builder.set_output(refs[sig], wire_length=float(rng.uniform(lo, hi)))
    return builder.build()


def _parse_lines(text, dff_as_buffer):
    inputs, outputs, assigns = [], [], {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            bucket = inputs if io_match.group(1).upper() == "INPUT" else outputs
            bucket.append(io_match.group(2))
            continue
        assign = _ASSIGN_RE.match(line)
        if not assign:
            raise CircuitError(f".bench line {lineno}: cannot parse {raw!r}")
        target, fn, arglist = assign.group(1), assign.group(2).lower(), assign.group(3)
        operands = [a.strip() for a in arglist.split(",") if a.strip()]
        if fn == "dff":
            if not dff_as_buffer:
                raise CircuitError(
                    f".bench line {lineno}: sequential element DFF not supported "
                    "(pass dff_as_buffer=True to treat flops as buffers)"
                )
            fn = "buf"
        if fn not in _SUPPORTED:
            raise CircuitError(f".bench line {lineno}: unsupported gate type {fn!r}")
        if fn in ("not", "buf", "buff") and len(operands) != 1:
            raise CircuitError(f".bench line {lineno}: {fn} takes exactly one operand")
        if fn not in ("not", "buf", "buff") and len(operands) < 2:
            raise CircuitError(f".bench line {lineno}: {fn} needs at least two operands")
        if target in assigns:
            raise CircuitError(f".bench line {lineno}: signal {target!r} defined twice")
        assigns[target] = ("buf" if fn == "buff" else fn, operands)
    if not inputs:
        raise CircuitError(".bench netlist declares no INPUT signals")
    if not outputs:
        raise CircuitError(".bench netlist declares no OUTPUT signals")
    for sig in inputs:
        if sig in assigns:
            raise CircuitError(f"signal {sig!r} is both an INPUT and a gate output")
    return inputs, outputs, assigns


def _topo_order(inputs, assigns):
    """Kahn topological sort of gate assignments; detects cycles/undefined."""
    defined = set(inputs)
    pending = {}  # gate -> number of operands not yet defined
    dependents = {}  # signal -> gates waiting on it
    for sig, (_, operands) in assigns.items():
        missing = 0
        for op in operands:
            if op in defined:
                continue
            if op not in assigns:
                raise CircuitError(f"gate {sig!r} references undefined signal {op!r}")
            missing += 1
            dependents.setdefault(op, []).append(sig)
        pending[sig] = missing
    order = []
    ready = [sig for sig, missing in pending.items() if missing == 0]
    while ready:
        sig = ready.pop()
        order.append(sig)
        for waiter in dependents.get(sig, ()):
            pending[waiter] -= 1
            if pending[waiter] == 0:
                ready.append(waiter)
    if len(order) != len(assigns):
        stuck = sorted(sig for sig, missing in pending.items() if missing > 0)
        raise CircuitError(f"combinational cycle among: {stuck[:5]}")
    return order


def builtin_bench_path(name):
    """Path of a ``.bench`` file shipped with the library (e.g. ``"c17"``)."""
    path = pathlib.Path(__file__).parent / "data" / f"{name}.bench"
    if not path.exists():
        raise CircuitError(f"no builtin bench named {name!r}")
    return path
