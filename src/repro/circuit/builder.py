"""Incremental circuit construction.

:class:`CircuitBuilder` lets callers describe a circuit at the logic level
(inputs, gates, outputs) and inserts the wire components the paper's graph
requires: every connection from a driver or gate output to a gate input or
an output load passes through a sized wire.  Explicit multi-segment routing
trees can be built with :meth:`CircuitBuilder.add_branch`.

Creation order is construction order, which is automatically topological
because an element's parents must exist before it is referenced; ``build``
re-indexes so that drivers occupy 1..s and appends source and sink.
"""

import dataclasses

from repro.circuit.circuit import Circuit
from repro.circuit.components import Node, NodeKind
from repro.tech import Technology
from repro.utils.errors import CircuitError


@dataclasses.dataclass(frozen=True)
class Ref:
    """Opaque handle to an element added to a builder."""

    builder_id: int
    kind: NodeKind
    name: str


class CircuitBuilder:
    """Builds a validated :class:`~repro.circuit.circuit.Circuit`.

    Parameters
    ----------
    tech:
        Technology supplying default RC parameters and size bounds;
        defaults to :meth:`Technology.dac99`.
    name:
        Circuit name carried through to reports.
    default_wire_length:
        Length (µm) used for wires that are inserted automatically when a
        gate input or output connection does not specify one.
    """

    def __init__(self, tech=None, name="", default_wire_length=100.0):
        self.tech = tech or Technology.dac99()
        self.name = name
        if default_wire_length <= 0:
            raise CircuitError("default_wire_length must be positive")
        self.default_wire_length = default_wire_length
        self._records = []  # (kind, name, params dict, parent builder_ids)
        self._names = set()
        self._outputs = []  # (builder_id of PO wire, load_cap)
        self._built = False

    # -- element creation ---------------------------------------------------------

    def add_input(self, name=None, resistance=None):
        """Add a primary input with its driver resistor ``R_D`` (paper Sec. 2.1)."""
        r = self.tech.driver_resistance if resistance is None else resistance
        if r <= 0:
            raise CircuitError("driver resistance must be positive")
        name = self._unique_name(name, "in")
        return self._record(NodeKind.DRIVER, name, {"r_hat": r}, [])

    def add_gate(self, function, inputs, name=None, wire_lengths=None, bounds=None,
                 unit_resistance=None, unit_capacitance=None, alpha=None):
        """Add a gate fed by ``inputs`` (driver, gate, or wire refs).

        Driver and gate inputs are connected through automatically created
        wires (one per connection); wire refs are connected directly, which
        is how multi-segment routing trees attach to gates.
        ``wire_lengths`` optionally gives the length of each auto-created
        wire (entries matching wire refs are ignored but must align).
        """
        if not inputs:
            raise CircuitError("a gate needs at least one input")
        if wire_lengths is not None and len(wire_lengths) != len(inputs):
            raise CircuitError("wire_lengths must align with inputs")
        tech = self.tech
        lower, upper = bounds if bounds is not None else (tech.min_size, tech.max_size)
        name = self._unique_name(name, "g")
        parent_ids = []
        for pos, ref in enumerate(inputs):
            ref = self._check_ref(ref)
            if ref.kind is NodeKind.WIRE:
                parent_ids.append(ref.builder_id)
                continue
            length = wire_lengths[pos] if wire_lengths is not None else self.default_wire_length
            wire = self.add_branch(ref, length, name=f"{name}.in{pos}")
            parent_ids.append(wire.builder_id)
        params = {
            "function": str(function).lower(),
            "r_hat": tech.gate_unit_resistance if unit_resistance is None else unit_resistance,
            "c_hat": tech.gate_unit_capacitance if unit_capacitance is None else unit_capacitance,
            "alpha": tech.gate_area_per_size if alpha is None else alpha,
            "lower": lower,
            "upper": upper,
        }
        return self._record(NodeKind.GATE, name, params, parent_ids)

    def add_branch(self, parent, length=None, name=None, bounds=None):
        """Add a wire segment hanging off ``parent`` (driver, gate, or wire).

        Returns the wire's ref; connect it to a gate via :meth:`add_gate`,
        extend it with further branches, or terminate it with
        :meth:`set_output`.
        """
        parent = self._check_ref(parent)
        tech = self.tech
        length = self.default_wire_length if length is None else length
        if length <= 0:
            raise CircuitError("wire length must be positive")
        lower, upper = bounds if bounds is not None else (tech.min_size, tech.max_size)
        name = self._unique_name(name, "w")
        params = {
            "r_hat": tech.wire_unit_resistance * length,
            "c_hat": tech.wire_unit_capacitance * length,
            "fringe": tech.wire_fringe_capacitance * length,
            "alpha": length,
            "length": length,
            "lower": lower,
            "upper": upper,
        }
        return self._record(NodeKind.WIRE, name, params, [parent.builder_id])

    def set_output(self, ref, load=None, wire_length=None, name=None):
        """Declare ``ref`` as a primary output with load ``C_L`` (fF).

        Driver/gate refs get an automatically created output wire; a wire
        ref is used directly (it must not already be an output).  Returns
        the ref of the primary-output wire.
        """
        ref = self._check_ref(ref)
        load = self.tech.load_capacitance if load is None else load
        if load <= 0:
            raise CircuitError("output load must be positive")
        if ref.kind is not NodeKind.WIRE:
            ref = self.add_branch(ref, wire_length, name=name or f"{ref.name}.out")
        if any(bid == ref.builder_id for bid, _ in self._outputs):
            raise CircuitError(f"wire {ref.name!r} is already a primary output")
        self._outputs.append((ref.builder_id, load))
        return ref

    # -- finalization -------------------------------------------------------------

    def build(self):
        """Assemble and validate the :class:`Circuit`.  One-shot."""
        if self._built:
            raise CircuitError("builder already produced a circuit")
        drivers = [i for i, rec in enumerate(self._records) if rec[0] is NodeKind.DRIVER]
        others = [i for i, rec in enumerate(self._records) if rec[0] is not NodeKind.DRIVER]
        order = drivers + others  # construction order is already topological
        final_index = {bid: pos + 1 for pos, bid in enumerate(order)}
        sink = len(self._records) + 1
        load_by_bid = dict(self._outputs)

        nodes = [Node(index=0, kind=NodeKind.SOURCE, name="@source")]
        edges = []
        for bid in order:
            kind, name, params, parents = self._records[bid]
            load_cap = load_by_bid.get(bid, 0.0)
            nodes.append(Node(index=final_index[bid], kind=kind, name=name,
                              load_cap=load_cap, **params))
            if kind is NodeKind.DRIVER:
                edges.append((0, final_index[bid]))
            for pid in parents:
                edges.append((final_index[pid], final_index[bid]))
        nodes.append(Node(index=sink, kind=NodeKind.SINK, name="@sink"))
        for bid, _ in self._outputs:
            edges.append((final_index[bid], sink))
        edges.sort()
        self._built = True
        return Circuit(nodes, edges, self.tech, name=self.name)

    # -- internals ----------------------------------------------------------------

    def _record(self, kind, name, params, parent_ids):
        self._records.append((kind, name, params, parent_ids))
        return Ref(builder_id=len(self._records) - 1, kind=kind, name=name)

    def _check_ref(self, ref):
        if not isinstance(ref, Ref) or not (0 <= ref.builder_id < len(self._records)):
            raise CircuitError(f"not a ref from this builder: {ref!r}")
        if self._records[ref.builder_id][1] != ref.name:
            raise CircuitError(f"stale ref {ref!r}")
        return ref

    def _unique_name(self, name, prefix):
        if name is None:
            name = f"{prefix}{len(self._records)}"
        if name in self._names or name in ("@source", "@sink"):
            raise CircuitError(f"duplicate element name {name!r}")
        self._names.add(name)
        return name
