"""Circuit representation substrate.

The paper's circuit graph ``H = (V, E)`` is a DAG over an artificial source
(index 0), ``s`` input drivers (1..s), ``n`` sized components — gates and
wires — (s+1..n+s, topologically indexed), and an artificial sink
(n+s+1).  This package provides:

* :class:`~repro.circuit.components.Node` /
  :class:`~repro.circuit.components.NodeKind` — node records,
* :class:`~repro.circuit.circuit.Circuit` — the finished, validated graph,
* :class:`~repro.circuit.builder.CircuitBuilder` — incremental construction
  with automatic wire insertion,
* :class:`~repro.circuit.compiled.CompiledCircuit` — CSR/NumPy form used by
  the vectorized engines,
* :func:`~repro.circuit.parser.load_bench` — ISCAS85 ``.bench`` reader,
* :mod:`~repro.circuit.generators` — seeded random circuit generation,
* :mod:`~repro.circuit.iscas85` — the Table 1 benchmark suite.
"""

from repro.circuit.builder import CircuitBuilder
from repro.circuit.circuit import Circuit
from repro.circuit.components import Node, NodeKind
from repro.circuit.compiled import CompiledCircuit
from repro.circuit.generators import random_circuit
from repro.circuit.iscas85 import ISCAS85_SPECS, iscas85_circuit, iscas85_suite
from repro.circuit.library import (
    equality_comparator,
    mux_tree,
    parity_tree,
    ripple_carry_adder,
)
from repro.circuit.parser import load_bench, load_bench_text
from repro.circuit.trees import random_tree_circuit

__all__ = [
    "Node",
    "NodeKind",
    "Circuit",
    "CircuitBuilder",
    "CompiledCircuit",
    "load_bench",
    "load_bench_text",
    "random_circuit",
    "random_tree_circuit",
    "ISCAS85_SPECS",
    "iscas85_circuit",
    "iscas85_suite",
    "ripple_carry_adder",
    "parity_tree",
    "mux_tree",
    "equality_comparator",
]
