"""Parameterized structural circuit generators.

Classic datapath/control structures built gate by gate, with known logic
functions — unlike :mod:`repro.circuit.generators`' random DAGs, these
are *functionally verifiable* (the tests simulate them against Python
integer arithmetic), and they give the examples realistic named
workloads:

* :func:`ripple_carry_adder` — n-bit adder (the carry chain is the
  canonical long-critical-path sizing workload),
* :func:`parity_tree` — balanced XOR reduction (maximal switching
  activity),
* :func:`mux_tree` — 2ᵏ-to-1 multiplexer (control-heavy, low activity),
* :func:`equality_comparator` — n-bit A==B (wide AND reduction).

All return validated :class:`Circuit` objects; wire lengths are drawn
from a seeded range like the random generator's.
"""

from repro.circuit.builder import CircuitBuilder
from repro.tech import Technology
from repro.utils.errors import CircuitError
from repro.utils.rng import make_rng


def _builder(name, tech, seed, wire_length_range):
    lo, hi = wire_length_range
    if not 0 < lo <= hi:
        raise CircuitError("wire_length_range must satisfy 0 < lo <= hi")
    rng = make_rng(seed)
    builder = CircuitBuilder(tech=tech or Technology.dac99(), name=name)

    def length():
        return float(rng.uniform(lo, hi))

    return builder, length


def ripple_carry_adder(n_bits, tech=None, seed=0, wire_length_range=(50.0, 200.0)):
    """n-bit ripple-carry adder: inputs ``a<i>``, ``b<i>``, ``cin``;
    outputs ``sum<i>`` and ``cout``.

    Full adder per bit: ``p = a⊕b``, ``s = p⊕c``, ``g = a·b``,
    ``t = p·c``, ``c' = g + t`` — five gates per bit.
    """
    if n_bits < 1:
        raise CircuitError("n_bits must be >= 1")
    b, length = _builder(f"rca{n_bits}", tech, seed, wire_length_range)
    a_in = [b.add_input(f"a{i}") for i in range(n_bits)]
    b_in = [b.add_input(f"b{i}") for i in range(n_bits)]
    carry = b.add_input("cin")
    for i in range(n_bits):
        p = b.add_gate("xor", [a_in[i], b_in[i]], name=f"p{i}",
                       wire_lengths=[length(), length()])
        s = b.add_gate("xor", [p, carry], name=f"s{i}",
                       wire_lengths=[length(), length()])
        g = b.add_gate("and", [a_in[i], b_in[i]], name=f"g{i}",
                       wire_lengths=[length(), length()])
        t = b.add_gate("and", [p, carry], name=f"t{i}",
                       wire_lengths=[length(), length()])
        carry = b.add_gate("or", [g, t], name=f"c{i + 1}",
                           wire_lengths=[length(), length()])
        b.set_output(s, wire_length=length(), name=f"sum{i}")
    b.set_output(carry, wire_length=length(), name="cout")
    return b.build()


def parity_tree(n_inputs, tech=None, seed=0, wire_length_range=(50.0, 200.0)):
    """Balanced XOR tree computing the parity of ``n_inputs`` bits."""
    if n_inputs < 2:
        raise CircuitError("parity_tree needs at least 2 inputs")
    b, length = _builder(f"parity{n_inputs}", tech, seed, wire_length_range)
    frontier = [b.add_input(f"in{i}") for i in range(n_inputs)]
    level = 0
    while len(frontier) > 1:
        nxt = []
        for k in range(0, len(frontier) - 1, 2):
            nxt.append(b.add_gate("xor", [frontier[k], frontier[k + 1]],
                                  name=f"x{level}_{k // 2}",
                                  wire_lengths=[length(), length()]))
        if len(frontier) % 2:
            nxt.append(frontier[-1])
        frontier = nxt
        level += 1
    b.set_output(frontier[0], wire_length=length(), name="parity")
    return b.build()


def mux_tree(n_select, tech=None, seed=0, wire_length_range=(50.0, 200.0)):
    """2ᵏ-to-1 multiplexer from 2-input muxes.

    Inputs ``d0..d(2^k−1)`` and selects ``s0..s(k−1)`` (s0 = least
    significant); output ``out``.  Each 2:1 mux is
    ``(a·s̄) + (b·s)`` — four gates.
    """
    if n_select < 1:
        raise CircuitError("mux_tree needs at least one select input")
    if n_select > 6:
        raise CircuitError("mux_tree limited to 6 selects (64 data inputs)")
    b, length = _builder(f"mux{1 << n_select}", tech, seed, wire_length_range)
    data = [b.add_input(f"d{i}") for i in range(1 << n_select)]
    selects = [b.add_input(f"s{j}") for j in range(n_select)]
    frontier = data
    for j, sel in enumerate(selects):
        sel_n = b.add_gate("not", [sel], name=f"sn{j}", wire_lengths=[length()])
        nxt = []
        for k in range(0, len(frontier), 2):
            lo_and = b.add_gate("and", [frontier[k], sel_n],
                                name=f"m{j}_{k // 2}lo",
                                wire_lengths=[length(), length()])
            hi_and = b.add_gate("and", [frontier[k + 1], sel],
                                name=f"m{j}_{k // 2}hi",
                                wire_lengths=[length(), length()])
            nxt.append(b.add_gate("or", [lo_and, hi_and],
                                  name=f"m{j}_{k // 2}",
                                  wire_lengths=[length(), length()]))
        frontier = nxt
    b.set_output(frontier[0], wire_length=length(), name="out")
    return b.build()


def equality_comparator(n_bits, tech=None, seed=0,
                        wire_length_range=(50.0, 200.0)):
    """n-bit ``A == B``: per-bit XNOR, then a balanced AND reduction."""
    if n_bits < 1:
        raise CircuitError("n_bits must be >= 1")
    b, length = _builder(f"eq{n_bits}", tech, seed, wire_length_range)
    a_in = [b.add_input(f"a{i}") for i in range(n_bits)]
    b_in = [b.add_input(f"b{i}") for i in range(n_bits)]
    frontier = [
        b.add_gate("xnor", [a_in[i], b_in[i]], name=f"eq{i}",
                   wire_lengths=[length(), length()])
        for i in range(n_bits)
    ]
    level = 0
    while len(frontier) > 1:
        nxt = []
        for k in range(0, len(frontier) - 1, 2):
            nxt.append(b.add_gate("and", [frontier[k], frontier[k + 1]],
                                  name=f"and{level}_{k // 2}",
                                  wire_lengths=[length(), length()]))
        if len(frontier) % 2:
            nxt.append(frontier[-1])
        frontier = nxt
        level += 1
    # A 1-bit comparator is a single XNOR; give it a buffer so the
    # output node is a gate output either way.
    if n_bits == 1:
        frontier = [b.add_gate("buf", [frontier[0]], name="eq_out",
                               wire_lengths=[length()])]
    b.set_output(frontier[0], wire_length=length(), name="equal")
    return b.build()
