"""The finished, validated circuit graph.

:class:`Circuit` is the immutable product of
:class:`~repro.circuit.builder.CircuitBuilder` (or of the generators and
the ``.bench`` parser, which use the builder internally).  It owns:

* the topologically indexed node list (source, drivers, components, sink),
* the edge list (every edge goes from a lower to a higher index),
* adjacency lookups (``inputs(i)`` / ``outputs(i)``), and
* the paper's stage-limited ``upstream(i)`` / ``downstream(i)`` traversals.

Heavy numerical work does not happen here — call :meth:`Circuit.compile`
to obtain the NumPy form used by the timing and sizing engines.
"""

import numpy as np

from repro.circuit.components import Node, NodeKind
from repro.utils.errors import ValidationError


class Circuit:
    """An immutable combinational circuit graph (paper Sec. 2.1).

    Instances should be obtained from :class:`CircuitBuilder`, the
    generators, or the parser; the constructor validates the invariants
    documented in :meth:`validate` and raises
    :class:`~repro.utils.errors.ValidationError` on violation.
    """

    def __init__(self, nodes, edges, tech, name=""):
        self.name = name
        self.tech = tech
        self._nodes = tuple(nodes)
        self._edges = tuple(tuple(edge) for edge in edges)
        self._in_adj = [[] for _ in self._nodes]
        self._out_adj = [[] for _ in self._nodes]
        for u, v in self._edges:
            self._out_adj[u].append(v)
            self._in_adj[v].append(u)
        self._by_name = {}
        for node in self._nodes:
            if node.name in self._by_name:
                raise ValidationError(f"duplicate node name {node.name!r}")
            self._by_name[node.name] = node
        self.validate()

    # -- basic structure ----------------------------------------------------------

    @property
    def nodes(self):
        """All nodes in index order (element ``i`` has ``index == i``)."""
        return self._nodes

    @property
    def edges(self):
        """All edges as ``(u, v)`` index pairs with ``u < v``."""
        return self._edges

    @property
    def num_nodes(self):
        return len(self._nodes)

    @property
    def source_index(self):
        return 0

    @property
    def sink_index(self):
        return len(self._nodes) - 1

    @property
    def num_drivers(self):
        """The paper's ``s`` — the number of primary inputs."""
        return sum(1 for n in self._nodes if n.kind is NodeKind.DRIVER)

    @property
    def num_components(self):
        """The paper's ``n`` — the number of sized gates and wires."""
        return sum(1 for n in self._nodes if n.kind.is_sizable)

    @property
    def num_gates(self):
        return sum(1 for n in self._nodes if n.is_gate)

    @property
    def num_wires(self):
        return sum(1 for n in self._nodes if n.is_wire)

    def node(self, index):
        return self._nodes[index]

    def node_by_name(self, name):
        """Look up a node by its stable name (raises ``KeyError`` if absent)."""
        return self._by_name[name]

    def inputs(self, index):
        """The paper's ``input(i)``: indices with an edge into ``i``."""
        return tuple(self._in_adj[index])

    def outputs(self, index):
        """The paper's ``output(i)``: indices ``i`` has an edge to."""
        return tuple(self._out_adj[index])

    def drivers(self):
        return tuple(n for n in self._nodes if n.is_driver)

    def gates(self):
        return tuple(n for n in self._nodes if n.is_gate)

    def wires(self):
        return tuple(n for n in self._nodes if n.is_wire)

    def components(self):
        """Sized components (gates and wires) in index order."""
        return tuple(n for n in self._nodes if n.kind.is_sizable)

    def primary_output_wires(self):
        """Wires that connect to the sink (each carries an output load)."""
        sink = self.sink_index
        return tuple(self._nodes[u] for u in self._in_adj[sink])

    # -- paper traversals ---------------------------------------------------------

    def downstream(self, index):
        """Stage-limited downstream set (paper Sec. 2.1).

        Nodes on paths from ``index`` toward the loads, *including*
        ``index`` itself, where traversal does not expand past a gate
        (a gate's input capacitance terminates an RC stage) and stops at
        the sink.  Matches the paper's example ``downstream(2) = {2,5,7}``.
        """
        seen = {index}
        frontier = [index]
        while frontier:
            i = frontier.pop()
            expand = i == index or self._nodes[i].is_wire
            if not expand:
                continue
            for k in self._out_adj[i]:
                if k == self.sink_index or k in seen:
                    continue
                seen.add(k)
                frontier.append(k)
        return seen

    def upstream(self, index):
        """Stage-limited upstream set (paper Sec. 2.1).

        Nodes on paths from ``index`` back toward the drivers, *excluding*
        ``index``, stopping at (and including) the first gate or driver —
        the driver of the RC stage.  Matches ``upstream(10) = {6}``.

        For a gate, each input wire belongs to a different stage, so the
        union over all input stages is returned.
        """
        seen = set()
        frontier = list(self._in_adj[index])
        while frontier:
            j = frontier.pop()
            if j == self.source_index or j in seen:
                continue
            seen.add(j)
            if self._nodes[j].is_wire:
                frontier.extend(self._in_adj[j])
        return seen

    # -- bulk helpers -------------------------------------------------------------

    def default_sizes(self, value=1.0):
        """Initial size vector (length ``num_nodes``), clipped to bounds.

        Non-sizable nodes get 0 (the paper sets ``x_i = 0`` for drivers).
        """
        x = np.zeros(self.num_nodes)
        for node in self._nodes:
            if node.kind.is_sizable:
                x[node.index] = min(node.upper, max(node.lower, value))
        return x

    def compile(self):
        """The memoized :class:`~repro.circuit.compiled.CompiledCircuit` form.

        Compiled once per circuit and shared by every caller (the object
        is read-only): the layout builder, the simulation plan, and the
        solver session all reuse one array form instead of re-walking
        the node list.
        """
        compiled = self.__dict__.get("_compiled")
        if compiled is None:
            from repro.circuit.compiled import CompiledCircuit

            compiled = self._compiled = CompiledCircuit.from_circuit(self)
        return compiled

    def wire_mask(self):
        """Memoized read-only boolean mask: ``mask[i]`` ⇔ node ``i`` is a wire.

        Lets geometry validation test channel membership as one fancy
        index instead of a per-wire ``node(i).is_wire`` loop.
        """
        mask = self.__dict__.get("_wire_mask")
        if mask is None:
            mask = np.fromiter((n.is_wire for n in self._nodes), dtype=bool,
                               count=len(self._nodes))
            mask.setflags(write=False)
            self._wire_mask = mask
        return mask

    def sim_plan(self):
        """The memoized :class:`~repro.simulate.plan.SimPlan` for this circuit.

        Compiled on first use and cached for the circuit's lifetime
        (the graph is immutable), mirroring
        ``CompiledCircuit.sweep_plan()``.
        """
        plan = self.__dict__.get("_sim_plan")
        if plan is None:
            from repro.simulate.plan import SimPlan

            plan = self._sim_plan = SimPlan(self)
        return plan

    # -- validation ---------------------------------------------------------------

    def validate(self):
        """Check every structural invariant; raise ``ValidationError`` if broken.

        Invariants (paper Sec. 2.1 plus routing-tree assumptions):

        1. node ``i`` of the list has ``index == i``; node 0 is the source
           and the last node is the sink;
        2. drivers occupy indices ``1..s`` contiguously;
        3. every edge ``(u, v)`` has ``u < v`` (topological indexing);
        4. the source feeds exactly the drivers; the sink is fed only by
           wires (primary-output wires, which carry ``load_cap > 0``);
        5. wires have in-degree exactly 1 (routing trees) and their parent
           is a driver, gate, or wire;
        6. gates have in-degree ≥ 1 and every gate input is a wire;
        7. every component has out-degree ≥ 1 (no dangling logic) and is
           reachable from the source.
        """
        nodes, sink = self._nodes, self.sink_index
        if not nodes or nodes[0].kind is not NodeKind.SOURCE:
            raise ValidationError("node 0 must be the source")
        if nodes[-1].kind is not NodeKind.SINK:
            raise ValidationError("last node must be the sink")
        for i, node in enumerate(nodes):
            if node.index != i:
                raise ValidationError(f"node {node.name!r} has index {node.index}, expected {i}")
        s = self.num_drivers
        for i in range(1, s + 1):
            if not nodes[i].is_driver:
                raise ValidationError(f"indices 1..{s} must be drivers; index {i} is not")
        for u, v in self._edges:
            if not 0 <= u < v <= sink:
                raise ValidationError(f"edge ({u},{v}) violates topological indexing")
        if sorted(self._out_adj[0]) != list(range(1, s + 1)):
            raise ValidationError("source must feed exactly the drivers")
        for u in self._in_adj[sink]:
            if not nodes[u].is_wire:
                raise ValidationError(f"sink is fed by non-wire node {nodes[u].name!r}")
            if nodes[u].load_cap <= 0:
                raise ValidationError(f"primary-output wire {nodes[u].name!r} has no load")
        for node in nodes:
            ins, outs = self._in_adj[node.index], self._out_adj[node.index]
            if node.is_wire:
                if len(ins) != 1:
                    raise ValidationError(f"wire {node.name!r} must have exactly one input")
                parent = nodes[ins[0]]
                if not (parent.is_driver or parent.is_gate or parent.is_wire):
                    raise ValidationError(f"wire {node.name!r} has invalid parent kind")
            if node.is_gate:
                if not ins:
                    raise ValidationError(f"gate {node.name!r} has no inputs")
                for j in ins:
                    if not nodes[j].is_wire:
                        raise ValidationError(f"gate {node.name!r} input {nodes[j].name!r} is not a wire")
            if node.is_driver and (len(ins) != 1 or ins[0] != 0):
                raise ValidationError(f"driver {node.name!r} must be fed by the source only")
            if node.kind.is_component and not outs:
                raise ValidationError(f"component {node.name!r} has no fanout")
        self._check_reachability()

    def _check_reachability(self):
        reached = np.zeros(self.num_nodes, dtype=bool)
        reached[0] = True
        for u, v in self._edges:  # edges are topologically ordered by u < v
            if reached[u]:
                reached[v] = True
        unreachable = [n.name for n in self._nodes if not reached[n.index]]
        if unreachable:
            raise ValidationError(f"nodes unreachable from source: {unreachable[:5]}")

    def __repr__(self):
        return (
            f"Circuit({self.name!r}, gates={self.num_gates}, wires={self.num_wires}, "
            f"drivers={self.num_drivers})"
        )
