"""Array (CSR) form of a circuit for the vectorized engines.

:class:`CompiledCircuit` flattens a validated
:class:`~repro.circuit.circuit.Circuit` into NumPy arrays:

* per-node model parameters (``r_hat``, ``c_hat``, ``fringe``, ``alpha``,
  bounds, output loads) and kind masks,
* the edge list plus CSR adjacency in both directions,
* a longest-path level schedule with per-level node and edge groups, which
  is what lets the timing/sizing sweeps run as a short sequence of NumPy
  segment operations instead of per-node Python loops.

Everything here is read-only after construction; solvers own their own
state vectors (sizes, multipliers) and pass them into the sweep helpers in
:mod:`repro.timing` and :mod:`repro.core`.
"""

import numpy as np

from repro.circuit.components import NodeKind


class CompiledCircuit:
    """Read-only NumPy view of a circuit graph.

    Create via :meth:`from_circuit` (or ``circuit.compile()``).  Node
    arrays have length ``num_nodes``; edge arrays have length
    ``num_edges`` and identify edges by position (edge ``e`` connects
    ``edge_src[e] → edge_dst[e]``).
    """

    def __init__(self, circuit):
        nodes = circuit.nodes
        n_nodes = circuit.num_nodes
        self.circuit = circuit
        self.name = circuit.name
        self.tech = circuit.tech
        self.num_nodes = n_nodes
        self.num_drivers = circuit.num_drivers
        self.num_components = circuit.num_components
        self.source = 0
        self.sink = n_nodes - 1

        self.kind = np.array([int(n.kind) for n in nodes], dtype=np.int8)
        self.is_gate = self.kind == int(NodeKind.GATE)
        self.is_wire = self.kind == int(NodeKind.WIRE)
        self.is_driver = self.kind == int(NodeKind.DRIVER)
        self.is_sizable = self.is_gate | self.is_wire

        self.r_hat = np.array([n.r_hat for n in nodes])
        self.c_hat = np.array([n.c_hat for n in nodes])
        self.fringe = np.array([n.fringe for n in nodes])
        self.alpha = np.array([n.alpha for n in nodes])
        self.lower = np.array([n.lower for n in nodes])
        self.upper = np.array([n.upper for n in nodes])
        self.load_cap = np.array([n.load_cap for n in nodes])
        self.length = np.array([n.length for n in nodes])

        edges = np.array(circuit.edges, dtype=np.int64).reshape(-1, 2)
        self.num_edges = len(edges)
        self.edge_src = np.ascontiguousarray(edges[:, 0])
        self.edge_dst = np.ascontiguousarray(edges[:, 1])

        self.in_ptr, self.in_edges = _csr(self.edge_dst, n_nodes)
        self.out_ptr, self.out_edges = _csr(self.edge_src, n_nodes)
        self.in_degree = np.diff(self.in_ptr)
        self.out_degree = np.diff(self.out_ptr)

        # Wire parent (wires have in-degree exactly 1); -1 elsewhere.
        self.wire_parent = np.full(n_nodes, -1, dtype=np.int64)
        wire_idx = np.flatnonzero(self.is_wire)
        self.wire_parent[wire_idx] = self.edge_src[self.in_edges[self.in_ptr[wire_idx]]]

        # Longest-path levels: edges always go to strictly higher levels.
        level = np.zeros(n_nodes, dtype=np.int64)
        for src, dst in zip(self.edge_src, self.edge_dst):  # index order == topo order
            if level[src] + 1 > level[dst]:
                level[dst] = level[src] + 1
        level[self.sink] = int(level.max()) + 1  # keep the sink strictly last
        self.level = level
        self.num_levels = int(level.max()) + 1

        self.nodes_by_level = _group(np.arange(n_nodes), level, self.num_levels)
        self.edges_by_src_level = _group(
            np.arange(self.num_edges), level[self.edge_src], self.num_levels
        )
        self.edges_by_dst_level = _group(
            np.arange(self.num_edges), level[self.edge_dst], self.num_levels
        )

        self.component_indices = np.flatnonzero(self.is_sizable)
        self.wire_indices = wire_idx
        self.gate_indices = np.flatnonzero(self.is_gate)
        self.sink_in_edges = self.in_edges[self.in_ptr[self.sink]: self.in_ptr[self.sink + 1]]

    @classmethod
    def from_circuit(cls, circuit):
        return cls(circuit)

    def sweep_plan(self):
        """Memoized :class:`~repro.timing.kernels.SweepPlan` for this circuit.

        The plan presorts every level's edge group by scatter target so
        the timing/sizing sweeps run as ``take``/``reduceat`` segment
        operations instead of unbuffered ``np.add.at`` scatters.  Built
        once on first use; like the rest of this object it is read-only.
        """
        plan = self.__dict__.get("_sweep_plan")
        if plan is None:
            from repro.timing.kernels import SweepPlan

            plan = self._sweep_plan = SweepPlan(self)
        return plan

    @property
    def nbytes(self):
        """Total bytes of the compiled arrays (used by the Fig. 10(a) bench)."""
        total = 0
        for value in vars(self).values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
            elif isinstance(value, list):
                total += sum(a.nbytes for a in value if isinstance(a, np.ndarray))
        return total

    def array_inventory(self):
        """``name → ndarray`` mapping for memory-ledger registration."""
        out = {}
        for name, value in vars(self).items():
            if isinstance(value, np.ndarray):
                out[name] = value
        return out

    def default_sizes(self, value=1.0):
        """Size vector seeded at ``value`` and clipped to per-node bounds."""
        x = np.zeros(self.num_nodes)
        mask = self.is_sizable
        x[mask] = np.clip(value, self.lower[mask], self.upper[mask])
        return x

    def clip_sizes(self, x):
        """Return ``x`` clipped into ``[lower, upper]`` on sizable nodes."""
        out = np.where(self.is_sizable, np.clip(x, self.lower, self.upper), 0.0)
        return out

    def resistance(self, x):
        """Per-node resistance at sizes ``x``: ``r̂/x`` (fixed for drivers)."""
        r = np.zeros(self.num_nodes)
        mask = self.is_sizable
        r[mask] = self.r_hat[mask] / x[mask]
        r[self.is_driver] = self.r_hat[self.is_driver]
        return r

    def self_capacitance(self, x):
        """Per-node self (ground) capacitance ``ĉ·x + f``; 0 for drivers."""
        c = np.zeros(self.num_nodes)
        mask = self.is_sizable
        c[mask] = self.c_hat[mask] * x[mask] + self.fringe[mask]
        return c

    def __repr__(self):
        return (
            f"CompiledCircuit({self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, levels={self.num_levels})"
        )


def _csr(keys, n_bins):
    """Group array positions by ``keys``: returns (ptr, order) CSR pair."""
    order = np.argsort(keys, kind="stable").astype(np.int64)
    counts = np.bincount(keys, minlength=n_bins)
    ptr = np.zeros(n_bins + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    return ptr, order


def _group(ids, group_keys, n_groups):
    """Split ``ids`` into a list of arrays by ``group_keys`` (0..n_groups-1)."""
    order = np.argsort(group_keys, kind="stable")
    sorted_ids = ids[order]
    counts = np.bincount(group_keys, minlength=n_groups)
    splits = np.cumsum(counts)[:-1]
    return [np.ascontiguousarray(part) for part in np.split(sorted_ids, splits)]
