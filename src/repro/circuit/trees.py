"""Random circuits with multi-segment routing trees.

:func:`repro.circuit.generators.random_circuit` models every connection
as a single wire.  Real routes are *trees*: a driver's net runs through
chained segments and branch points before reaching its sinks.  This
module post-processes a generated circuit, splitting connection wires
into 1..``max_segments`` chained segments (total length preserved), so
that wire→wire edges and deeper RC stages are exercised — the
configurations where the stage-limited Elmore traversal earns its keep.

The result is built with :class:`CircuitBuilder` from scratch (segments
are new components), so all invariants are re-validated.
"""

import numpy as np

from repro.circuit.builder import CircuitBuilder
from repro.circuit.generators import random_circuit
from repro.utils.errors import CircuitError
from repro.utils.rng import derive_rng


def random_tree_circuit(n_gates, n_inputs, n_outputs, seed=0, tech=None,
                        max_segments=3, segment_probability=0.6,
                        target_depth=None, wire_length_range=(50.0, 300.0),
                        name=None):
    """Random circuit whose connections are multi-segment wire chains.

    Starts from :func:`random_circuit` with the same shape parameters,
    then replaces each connection wire by a chain of 1..``max_segments``
    segments (chain length ≥ 2 with probability ``segment_probability``),
    preserving the total route length.  Wire counts therefore *exceed*
    the single-segment equivalent; use :func:`random_circuit` when exact
    Table 1 wire counts matter.
    """
    if max_segments < 1:
        raise CircuitError("max_segments must be >= 1")
    if not 0.0 <= segment_probability <= 1.0:
        raise CircuitError("segment_probability must lie in [0, 1]")
    base = random_circuit(n_gates, n_inputs, n_outputs, seed=seed, tech=tech,
                          target_depth=target_depth,
                          wire_length_range=wire_length_range,
                          name=name or f"tree{n_gates}g")
    rng = derive_rng(seed, "segments")
    builder = CircuitBuilder(tech=base.tech, name=base.name)

    refs = {}
    for node in base.nodes:
        if node.is_driver:
            refs[node.index] = builder.add_input(name=node.name,
                                                 resistance=node.r_hat)
    sink = base.sink_index
    for node in base.nodes:
        if node.is_gate:
            input_wires = []
            for wire_idx in base.inputs(node.index):
                wire = base.node(wire_idx)
                parent = base.inputs(wire_idx)[0]
                input_wires.append(_emit_chain(
                    builder, refs[parent], wire, rng,
                    max_segments, segment_probability))
            refs[node.index] = builder.add_gate(
                node.function, input_wires, name=node.name,
                unit_resistance=node.r_hat, unit_capacitance=node.c_hat,
                alpha=node.alpha, bounds=(node.lower, node.upper))
    for wire in base.primary_output_wires():
        parent = base.inputs(wire.index)[0]
        tail = _emit_chain(builder, refs[parent], wire, rng,
                           max_segments, segment_probability)
        builder.set_output(tail, load=wire.load_cap)
    _ = sink
    return builder.build()


def _emit_chain(builder, parent_ref, wire, rng, max_segments, probability):
    """Replace ``wire`` by a chain of segments summing to its length."""
    if max_segments == 1 or rng.random() >= probability:
        n_segments = 1
    else:
        n_segments = int(rng.integers(2, max_segments + 1))
    cuts = np.sort(rng.uniform(0.15, 0.85, n_segments - 1))
    fractions = np.diff(np.concatenate([[0.0], cuts, [1.0]]))
    tail = parent_ref
    for s, fraction in enumerate(fractions):
        segment_name = wire.name if n_segments == 1 else f"{wire.name}~{s}"
        tail = builder.add_branch(tail, length=float(fraction * wire.length),
                                  name=segment_name,
                                  bounds=(wire.lower, wire.upper))
    return tail
