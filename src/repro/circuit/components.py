"""Node records for the circuit graph.

Each vertex of the circuit graph is a :class:`Node`.  A node sits at the
*output* of a component (Sec. 2.1 of the paper): drivers, gates, and wires
are components; the source and sink are artificial bookkeeping vertices.

The RC model parameters stored per node follow Fig. 3 of the paper:

========  =====================  =======================  ==================
kind      resistance             capacitance              area
========  =====================  =======================  ==================
DRIVER    ``r_hat`` (fixed)      0                        0 (not sized)
GATE      ``r_hat / x``          ``c_hat · x``            ``alpha · x``
WIRE      ``r_hat / x``          ``c_hat · x + fringe``   ``alpha · x``
========  =====================  =======================  ==================

For wires, ``r_hat``/``c_hat``/``fringe``/``alpha`` already include the
wire length (``r̂·ℓ``, ``ĉ·ℓ``, ``f·ℓ``, ``ℓ``), so every sized component
exposes the same one-variable model in its size ``x``.
"""

import dataclasses
import enum

from repro.utils.errors import CircuitError


class NodeKind(enum.IntEnum):
    """Vertex classes of the circuit graph (paper's G, W, R, S, T sets)."""

    SOURCE = 0
    DRIVER = 1
    GATE = 2
    WIRE = 3
    SINK = 4

    @property
    def is_component(self):
        """Whether this node models a physical component (has an index 1..n+s)."""
        return self in (NodeKind.DRIVER, NodeKind.GATE, NodeKind.WIRE)

    @property
    def is_sizable(self):
        """Whether the component's size ``x`` is an optimization variable."""
        return self in (NodeKind.GATE, NodeKind.WIRE)


@dataclasses.dataclass(frozen=True)
class Node:
    """One vertex of the circuit graph.  Immutable after construction.

    Attributes
    ----------
    index:
        Topological index in the finished circuit (0 = source).
    kind:
        The node class; determines which model fields are meaningful.
    name:
        Stable, human-readable identifier (unique within a circuit).
    r_hat:
        Unit-size resistance (gates/wires, Ω·µm or Ω pre-multiplied by
        length) or the fixed driver resistance (drivers, Ω).
    c_hat:
        Unit-size capacitance (fF/µm, pre-multiplied by length for wires).
    fringe:
        Size-independent capacitance (fF); nonzero only for wires.
    alpha:
        Area per µm of size (µm²/µm); the paper's ``α_i``.
    lower, upper:
        Size bounds ``L_i ≤ x_i ≤ U_i`` (µm); 0 for non-sizable nodes.
    function:
        Logic function name (gates only), e.g. ``"nand"``.
    length:
        Physical length in µm (wires only); used by geometry extraction.
    load_cap:
        Output load ``C_L`` in fF for primary-output wires (else 0).
    """

    index: int
    kind: NodeKind
    name: str
    r_hat: float = 0.0
    c_hat: float = 0.0
    fringe: float = 0.0
    alpha: float = 0.0
    lower: float = 0.0
    upper: float = 0.0
    function: str = ""
    length: float = 0.0
    load_cap: float = 0.0

    def __post_init__(self):
        if self.index < 0:
            raise CircuitError(f"node index must be non-negative, got {self.index}")
        if self.kind.is_sizable:
            if self.r_hat <= 0 or self.c_hat <= 0:
                raise CircuitError(
                    f"{self.kind.name.lower()} {self.name!r} needs positive r_hat/c_hat"
                )
            if not (0 < self.lower <= self.upper):
                raise CircuitError(
                    f"{self.kind.name.lower()} {self.name!r} needs 0 < lower <= upper, "
                    f"got [{self.lower}, {self.upper}]"
                )
            if self.alpha <= 0:
                raise CircuitError(f"{self.kind.name.lower()} {self.name!r} needs alpha > 0")
        if self.kind is NodeKind.DRIVER and self.r_hat <= 0:
            raise CircuitError(f"driver {self.name!r} needs a positive resistance")
        if self.kind is NodeKind.GATE and not self.function:
            raise CircuitError(f"gate {self.name!r} needs a logic function")
        if self.kind is NodeKind.WIRE and self.length <= 0:
            raise CircuitError(f"wire {self.name!r} needs a positive length")
        if self.fringe < 0 or self.load_cap < 0:
            raise CircuitError(f"node {self.name!r}: fringe/load_cap must be non-negative")

    @property
    def is_gate(self):
        return self.kind is NodeKind.GATE

    @property
    def is_wire(self):
        return self.kind is NodeKind.WIRE

    @property
    def is_driver(self):
        return self.kind is NodeKind.DRIVER

    def resistance(self, size):
        """Component resistance at size ``x`` (Ω); drivers ignore ``size``."""
        if self.kind is NodeKind.DRIVER:
            return self.r_hat
        if not self.kind.is_sizable:
            return 0.0
        return self.r_hat / size

    def capacitance(self, size):
        """Component self-capacitance at size ``x`` (fF)."""
        if not self.kind.is_sizable:
            return 0.0
        return self.c_hat * size + self.fringe

    def area(self, size):
        """Component area at size ``x`` (µm²)."""
        if not self.kind.is_sizable:
            return 0.0
        return self.alpha * size
