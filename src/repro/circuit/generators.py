"""Seeded random circuit generation.

Real ISCAS85 netlists are not redistributed with this library, so the
Table 1 experiments run on synthetic circuits whose *statistics* match the
paper's: exact gate and wire counts, real PI/PO counts, average fan-in
around two, and tens of logic levels.  The construction below is fully
deterministic for a given seed.

Construction invariants (all checked by ``Circuit.validate``):

* wire count is *exact*: ``#wires = Σ gate fan-ins + #primary outputs``
  (every connection is one wire component, as in the paper's Fig. 1/2);
* every driver and every gate output is used at least once;
* exactly ``n_outputs`` gates feed primary outputs, and every gate with no
  internal fanout is among them.
"""

import numpy as np

from repro.circuit.builder import CircuitBuilder
from repro.tech import Technology
from repro.utils.errors import CircuitError
from repro.utils.rng import derive_rng, make_rng

#: Gate functions by fan-in; 1-input gates alternate NOT/BUF, the rest mix
#: the standard cell set (XOR kept to 2 inputs as in typical libraries).
_FUNCTIONS_1 = ("not", "buf")
_FUNCTIONS_2 = ("nand", "nor", "and", "or", "xor")
_FUNCTIONS_N = ("nand", "nor", "and", "or")

_MAX_FANIN = 4


def random_circuit(n_gates, n_inputs, n_outputs, seed=0, tech=None,
                   n_wires=None, avg_fanin=2.0, depth_tau=None,
                   target_depth=None, wire_length_range=(50.0, 300.0),
                   name=None):
    """Generate a random combinational circuit.

    Parameters
    ----------
    n_gates, n_inputs, n_outputs:
        Gate / primary-input / primary-output counts.
    n_wires:
        Exact wire count to hit (``Σ fan-ins + n_outputs``); defaults to
        ``round(avg_fanin · n_gates) + n_outputs``.
    depth_tau:
        Locality scale of input selection; gate ``k`` draws its gate-type
        inputs at geometric distance ~``tau`` behind it, so logic depth
        grows like ``n_gates / tau``.  Defaults to ``max(3, n_gates/40)``.
    target_depth:
        Approximate gate depth to aim for; sets ``depth_tau ≈
        n_gates/target_depth`` (ignored when ``depth_tau`` is given).
        Used by the ISCAS85 suite to match real benchmark depths.
    wire_length_range:
        Uniform range (µm) for wire lengths.

    Returns a validated :class:`~repro.circuit.circuit.Circuit`.
    """
    if depth_tau is None and target_depth is not None:
        if target_depth < 1:
            raise CircuitError("target_depth must be >= 1")
        # The longest chain runs ≈ 2× the mean geometric step count, so
        # aim the locality scale twice as wide as the naive ratio.
        depth_tau = max(2.0, 2.0 * n_gates / float(target_depth))
    if n_gates < 1 or n_inputs < 1 or n_outputs < 1:
        raise CircuitError("n_gates, n_inputs, n_outputs must all be >= 1")
    if n_outputs > n_gates:
        raise CircuitError("cannot have more primary outputs than gates")
    # The coverage fix-up can fail for unlucky draws with tight wire
    # budgets; retry deterministically on derived seeds before giving up.
    last_error = None
    for attempt in range(8):
        rng = make_rng(seed if attempt == 0 else (seed, attempt))
        try:
            fanins = _draw_fanins(n_gates, n_inputs, n_outputs, n_wires, avg_fanin,
                                  derive_rng(rng, "fanin"))
            sources = _draw_sources(fanins, n_inputs, depth_tau,
                                    derive_rng(rng, "topology"))
            po_gates = _fix_coverage(sources, fanins, n_gates, n_inputs, n_outputs,
                                     derive_rng(rng, "coverage"))
        except CircuitError as error:
            last_error = error
            continue
        return _emit(sources, po_gates, n_inputs, tech, wire_length_range,
                     derive_rng(rng, "geometry"),
                     derive_rng(rng, "functions"),
                     name or f"random{n_gates}g", seed)
    raise CircuitError(f"random_circuit failed for seed {seed!r}: {last_error}")


def _draw_fanins(n_gates, n_inputs, n_outputs, n_wires, avg_fanin, rng):
    """Per-gate fan-in counts summing to the exact wire budget."""
    if n_wires is None:
        total = int(round(avg_fanin * n_gates))
    else:
        total = n_wires - n_outputs
    if not n_gates <= total <= _MAX_FANIN * n_gates:
        raise CircuitError(
            f"wire budget needs total fan-in in [{n_gates}, {_MAX_FANIN * n_gates}], got {total}"
        )
    fanins = np.ones(n_gates, dtype=np.int64)
    extra = total - n_gates
    while extra > 0:
        room = np.flatnonzero(fanins < _MAX_FANIN)
        picks = rng.choice(room, size=min(extra, len(room)), replace=False)
        fanins[picks] += 1
        extra -= len(picks)
    return fanins


def _draw_sources(fanins, n_inputs, depth_tau, rng):
    """Choose each gate's input sources.

    Source ids: ``0..n_inputs-1`` are drivers, ``n_inputs + k`` is gate
    ``k``.  Gate ``k`` draws each input either from a uniform driver (with
    probability shrinking as the netlist grows around it) or from a
    geometrically recent earlier gate — the locality that gives realistic
    logic depth.  Duplicate sources within one gate are avoided when
    enough candidates exist.
    """
    n_gates = len(fanins)
    tau = depth_tau if depth_tau is not None else max(3.0, n_gates / 40.0)
    sources = []
    for k, fanin in enumerate(fanins):
        chosen = []
        candidates = n_inputs + k
        for _ in range(int(fanin)):
            for _attempt in range(8):
                take_driver = k == 0 or rng.random() < n_inputs / (n_inputs + k)
                if take_driver:
                    src = int(rng.integers(0, n_inputs))
                else:
                    back = int(min(rng.geometric(min(1.0, 1.0 / tau)), k))
                    src = n_inputs + k - back
                if src not in chosen or candidates <= len(chosen):
                    break
            chosen.append(src)
        sources.append(chosen)
    return sources


def _fix_coverage(sources, fanins, n_gates, n_inputs, n_outputs, rng):
    """Ensure every source is used and exactly ``n_outputs`` gates are POs.

    The last ``n_outputs`` gates become the primary outputs (outputs
    cluster at the end of real netlists), so a PO gate is allowed to have
    no internal fanout.  Every other unused source is rewired into an
    input slot of a strictly later gate via a worklist: slots whose
    current source is used more than once are preferred (no new orphan);
    when none exists, the displaced source joins the worklist.  A budget
    bounds pathological displacement chains (the caller retries on a
    derived seed).
    """
    n_sources = n_inputs + n_gates
    use_count = np.zeros(n_sources, dtype=np.int64)
    for chosen in sources:
        for src in chosen:
            use_count[src] += 1

    po_gates = list(range(n_gates - n_outputs, n_gates))
    po_sources = {n_inputs + g for g in po_gates}

    def needs_fanout(s):
        return use_count[s] == 0 and s not in po_sources

    work = [s for s in range(n_sources) if needs_fanout(s)]
    budget = 20 * (n_sources + 1)
    while work:
        budget -= 1
        if budget < 0:
            raise CircuitError(
                "cannot rewire unused sources within budget "
                "(wire topology too tight for this seed)"
            )
        s = work.pop()
        if not needs_fanout(s):
            continue
        first_gate = 0 if s < n_inputs else s - n_inputs + 1
        slots = [
            (k, pos)
            for k in range(first_gate, n_gates)
            for pos, cur in enumerate(sources[k])
            if cur != s
        ]
        if not slots:
            raise CircuitError(
                "cannot rewire unused sources: no input slots after them"
            )
        redundant = [sl for sl in slots if use_count[sources[sl[0]][sl[1]]] > 1]
        pool = redundant if redundant else slots
        k, pos = pool[int(rng.integers(0, len(pool)))]
        displaced = sources[k][pos]
        use_count[displaced] -= 1
        sources[k][pos] = s
        use_count[s] += 1
        if needs_fanout(displaced):
            work.append(displaced)
    return po_gates


def _emit(sources, po_gates, n_inputs, tech, wire_length_range, geo_rng, fn_rng,
          name, seed):
    lo, hi = wire_length_range
    if not 0 < lo <= hi:
        raise CircuitError("wire_length_range must satisfy 0 < lo <= hi")
    builder = CircuitBuilder(tech=tech or Technology.dac99(), name=name)
    driver_refs = [builder.add_input(name=f"pi{d}") for d in range(n_inputs)]
    gate_refs = []
    for k, chosen in enumerate(sources):
        fanin = len(chosen)
        if fanin == 1:
            fn = _FUNCTIONS_1[int(fn_rng.integers(0, len(_FUNCTIONS_1)))]
        elif fanin == 2:
            fn = _FUNCTIONS_2[int(fn_rng.integers(0, len(_FUNCTIONS_2)))]
        else:
            fn = _FUNCTIONS_N[int(fn_rng.integers(0, len(_FUNCTIONS_N)))]
        refs = [driver_refs[s] if s < n_inputs else gate_refs[s - n_inputs]
                for s in chosen]
        lengths = geo_rng.uniform(lo, hi, size=fanin).tolist()
        gate_refs.append(builder.add_gate(fn, refs, name=f"g{k}", wire_lengths=lengths))
    for g in po_gates:
        builder.set_output(gate_refs[g], wire_length=float(geo_rng.uniform(lo, hi)))
    return builder.build()
