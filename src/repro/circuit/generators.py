"""Seeded random circuit generation.

Real ISCAS85 netlists are not redistributed with this library, so the
Table 1 experiments run on synthetic circuits whose *statistics* match the
paper's: exact gate and wire counts, real PI/PO counts, average fan-in
around two, and tens of logic levels.  The construction below is fully
deterministic for a given seed.

Construction invariants (all checked by ``Circuit.validate``):

* wire count is *exact*: ``#wires = Σ gate fan-ins + #primary outputs``
  (every connection is one wire component, as in the paper's Fig. 1/2);
* every driver and every gate output is used at least once;
* exactly ``n_outputs`` gates feed primary outputs, and every gate with no
  internal fanout is among them.
"""

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.components import Node, NodeKind
from repro.tech import Technology
from repro.utils.errors import CircuitError
from repro.utils.rng import derive_rng, make_rng

#: Gate functions by fan-in; 1-input gates alternate NOT/BUF, the rest mix
#: the standard cell set (XOR kept to 2 inputs as in typical libraries).
_FUNCTIONS_1 = ("not", "buf")
_FUNCTIONS_2 = ("nand", "nor", "and", "or", "xor")
_FUNCTIONS_N = ("nand", "nor", "and", "or")

_MAX_FANIN = 4


def random_circuit(n_gates, n_inputs, n_outputs, seed=0, tech=None,
                   n_wires=None, avg_fanin=2.0, depth_tau=None,
                   target_depth=None, wire_length_range=(50.0, 300.0),
                   name=None):
    """Generate a random combinational circuit.

    Parameters
    ----------
    n_gates, n_inputs, n_outputs:
        Gate / primary-input / primary-output counts.
    n_wires:
        Exact wire count to hit (``Σ fan-ins + n_outputs``); defaults to
        ``round(avg_fanin · n_gates) + n_outputs``.
    depth_tau:
        Locality scale of input selection; gate ``k`` draws its gate-type
        inputs at geometric distance ~``tau`` behind it, so logic depth
        grows like ``n_gates / tau``.  Defaults to ``max(3, n_gates/40)``.
    target_depth:
        Approximate gate depth to aim for; sets ``depth_tau ≈
        n_gates/target_depth`` (ignored when ``depth_tau`` is given).
        Used by the ISCAS85 suite to match real benchmark depths.
    wire_length_range:
        Uniform range (µm) for wire lengths.

    Returns a validated :class:`~repro.circuit.circuit.Circuit`.
    """
    if depth_tau is None and target_depth is not None:
        if target_depth < 1:
            raise CircuitError("target_depth must be >= 1")
        # The longest chain runs ≈ 2× the mean geometric step count, so
        # aim the locality scale twice as wide as the naive ratio.
        depth_tau = max(2.0, 2.0 * n_gates / float(target_depth))
    if n_gates < 1 or n_inputs < 1 or n_outputs < 1:
        raise CircuitError("n_gates, n_inputs, n_outputs must all be >= 1")
    if n_outputs > n_gates:
        raise CircuitError("cannot have more primary outputs than gates")
    # The coverage fix-up can fail for unlucky draws with tight wire
    # budgets; retry deterministically on derived seeds before giving up.
    last_error = None
    for attempt in range(8):
        rng = make_rng(seed if attempt == 0 else (seed, attempt))
        try:
            fanins = _draw_fanins(n_gates, n_inputs, n_outputs, n_wires, avg_fanin,
                                  derive_rng(rng, "fanin"))
            sources = _draw_sources(fanins, n_inputs, depth_tau,
                                    derive_rng(rng, "topology"))
            po_gates = _fix_coverage(sources, fanins, n_gates, n_inputs, n_outputs,
                                     derive_rng(rng, "coverage"))
        except CircuitError as error:
            last_error = error
            continue
        return _emit(sources, po_gates, n_inputs, tech, wire_length_range,
                     derive_rng(rng, "geometry"),
                     derive_rng(rng, "functions"),
                     name or f"random{n_gates}g", seed)
    raise CircuitError(f"random_circuit failed for seed {seed!r}: {last_error}")


def _draw_fanins(n_gates, n_inputs, n_outputs, n_wires, avg_fanin, rng):
    """Per-gate fan-in counts summing to the exact wire budget."""
    # Coverage feasibility: every driver and every non-PO gate output
    # needs at least one input slot, so no seed can succeed below this.
    floor = max(n_gates, n_inputs + n_gates - n_outputs)
    if n_wires is None:
        total = max(int(round(avg_fanin * n_gates)), floor)
    else:
        total = n_wires - n_outputs
    if not floor <= total <= _MAX_FANIN * n_gates:
        raise CircuitError(
            f"wire budget needs total fan-in in [{floor}, {_MAX_FANIN * n_gates}], got {total}"
        )
    fanins = np.ones(n_gates, dtype=np.int64)
    extra = total - n_gates
    while extra > 0:
        room = np.flatnonzero(fanins < _MAX_FANIN)
        picks = rng.choice(room, size=min(extra, len(room)), replace=False)
        fanins[picks] += 1
        extra -= len(picks)
    return fanins


def _draw_sources(fanins, n_inputs, depth_tau, rng):
    """Choose each gate's input sources.

    Source ids: ``0..n_inputs-1`` are drivers, ``n_inputs + k`` is gate
    ``k``.  Gate ``k`` draws each input either from a uniform driver (with
    probability shrinking as the netlist grows around it) or from a
    geometrically recent earlier gate — the locality that gives realistic
    logic depth.  Duplicate sources within one gate are avoided when
    enough candidates exist.
    """
    n_gates = len(fanins)
    tau = depth_tau if depth_tau is not None else max(3.0, n_gates / 40.0)
    sources = []
    for k, fanin in enumerate(fanins):
        chosen = []
        candidates = n_inputs + k
        for _ in range(int(fanin)):
            for _attempt in range(8):
                take_driver = k == 0 or rng.random() < n_inputs / (n_inputs + k)
                if take_driver:
                    src = int(rng.integers(0, n_inputs))
                else:
                    back = int(min(rng.geometric(min(1.0, 1.0 / tau)), k))
                    src = n_inputs + k - back
                if src not in chosen or candidates <= len(chosen):
                    break
            chosen.append(src)
        sources.append(chosen)
    return sources


def _fix_coverage(sources, fanins, n_gates, n_inputs, n_outputs, rng):
    """Ensure every source is used and exactly ``n_outputs`` gates are POs.

    The last ``n_outputs`` gates become the primary outputs (outputs
    cluster at the end of real netlists), so a PO gate is allowed to have
    no internal fanout.  Every other unused source is rewired into an
    input slot of a strictly later gate via a worklist: slots whose
    current source is used more than once are preferred (no new orphan);
    when none exists, the displaced source joins the worklist.  A budget
    bounds pathological displacement chains (the caller retries on a
    derived seed).

    The input slots live in one flat array (``(gate, position)``
    lexicographic order, the same order the old per-item list
    comprehensions enumerated), so each worklist item is a constant
    number of vectorized passes over the tail instead of building
    O(total-fan-in) Python tuples — the difference between quadratic
    minutes and sub-second at 50k gates.  Candidate-pool sizes and
    ordering match the list spelling exactly, so the ``rng`` draw
    sequence (and therefore the emitted circuit) is unchanged.
    """
    n_sources = n_inputs + n_gates
    offsets = np.zeros(n_gates + 1, dtype=np.int64)
    np.cumsum(np.asarray(fanins, dtype=np.int64), out=offsets[1:])
    total = int(offsets[-1])
    src_flat = np.fromiter(
        (src for chosen in sources for src in chosen),
        dtype=np.int64, count=total)
    use_count = np.bincount(src_flat, minlength=n_sources)

    po_gates = list(range(n_gates - n_outputs, n_gates))
    is_po_source = np.zeros(n_sources, dtype=bool)
    is_po_source[n_inputs + n_gates - n_outputs:] = True

    work = [s for s in range(n_sources)
            if use_count[s] == 0 and not is_po_source[s]]
    budget = 20 * (n_sources + 1)
    while work:
        budget -= 1
        if budget < 0:
            raise CircuitError(
                "cannot rewire unused sources within budget "
                "(wire topology too tight for this seed)"
            )
        s = work.pop()
        if use_count[s] != 0 or is_po_source[s]:
            continue
        first_gate = 0 if s < n_inputs else s - n_inputs + 1
        start = int(offsets[first_gate])
        tail = src_flat[start:total]
        valid = tail != s
        n_slots = int(np.count_nonzero(valid))
        if n_slots == 0:
            raise CircuitError(
                "cannot rewire unused sources: no input slots after them"
            )
        redundant = valid & (use_count[tail] > 1)
        n_red = int(np.count_nonzero(redundant))
        pool = redundant if n_red else valid
        pick = int(rng.integers(0, n_red if n_red else n_slots))
        j = start + int(np.flatnonzero(pool)[pick])
        displaced = int(src_flat[j])
        use_count[displaced] -= 1
        src_flat[j] = s
        use_count[s] += 1
        if use_count[displaced] == 0 and not is_po_source[displaced]:
            work.append(displaced)
    # Write the rewired slots back into the caller's per-gate lists.
    flat = src_flat.tolist()
    for k in range(n_gates):
        lo, hi = int(offsets[k]), int(offsets[k + 1])
        sources[k][:] = flat[lo:hi]
    return po_gates


def _emit(sources, po_gates, n_inputs, tech, wire_length_range, geo_rng, fn_rng,
          name, seed):
    """Assemble the :class:`Circuit` for a drawn topology.

    Reproduces the :class:`CircuitBuilder` construction node-for-node
    (same names, indices, parameters, and edge order) without the
    builder's per-record bookkeeping: nodes and edges are emitted
    directly into the lists :class:`Circuit` consumes, which is what
    lets a 50k-gate netlist materialize in seconds.  The per-gate RNG
    calls keep the builder path's exact order and arguments — the
    byte-identity contract pinned by the generator equivalence tests.
    """
    lo, hi = wire_length_range
    if not 0 < lo <= hi:
        raise CircuitError("wire_length_range must satisfy 0 < lo <= hi")
    tech = tech or Technology.dac99()
    n_gates = len(sources)
    min_size, max_size = tech.min_size, tech.max_size
    wru, wcu, wfc = (tech.wire_unit_resistance, tech.wire_unit_capacitance,
                     tech.wire_fringe_capacitance)

    nodes = [Node(index=0, kind=NodeKind.SOURCE, name="@source")]
    edges = []
    for d in range(n_inputs):
        nodes.append(Node(index=d + 1, kind=NodeKind.DRIVER, name=f"pi{d}",
                          r_hat=tech.driver_resistance))
        edges.append((0, d + 1))

    # Gate k's input wires occupy indices base..base+fanin-1 and the gate
    # itself base+fanin, exactly the builder's record order (wires are
    # recorded by add_gate immediately before their gate).
    gate_index = np.empty(n_gates, dtype=np.int64)
    idx = n_inputs + 1
    for k, chosen in enumerate(sources):
        fanin = len(chosen)
        if fanin == 1:
            fn = _FUNCTIONS_1[int(fn_rng.integers(0, len(_FUNCTIONS_1)))]
        elif fanin == 2:
            fn = _FUNCTIONS_2[int(fn_rng.integers(0, len(_FUNCTIONS_2)))]
        else:
            fn = _FUNCTIONS_N[int(fn_rng.integers(0, len(_FUNCTIONS_N)))]
        lengths = geo_rng.uniform(lo, hi, size=fanin).tolist()
        gname = f"g{k}"
        gidx = idx + fanin
        for pos, s in enumerate(chosen):
            length = lengths[pos]
            widx = idx + pos
            nodes.append(Node(
                index=widx, kind=NodeKind.WIRE, name=f"{gname}.in{pos}",
                r_hat=wru * length, c_hat=wcu * length, fringe=wfc * length,
                alpha=length, length=length, lower=min_size, upper=max_size))
            parent = s + 1 if s < n_inputs else int(gate_index[s - n_inputs])
            edges.append((parent, widx))
            edges.append((widx, gidx))
        nodes.append(Node(
            index=gidx, kind=NodeKind.GATE, name=gname, function=fn,
            r_hat=tech.gate_unit_resistance, c_hat=tech.gate_unit_capacitance,
            alpha=tech.gate_area_per_size, lower=min_size, upper=max_size))
        gate_index[k] = gidx
        idx = gidx + 1

    sink = idx + len(po_gates)
    for g in po_gates:
        length = float(geo_rng.uniform(lo, hi))
        gidx = int(gate_index[g])
        nodes.append(Node(
            index=idx, kind=NodeKind.WIRE, name=f"g{g}.out",
            r_hat=wru * length, c_hat=wcu * length, fringe=wfc * length,
            alpha=length, length=length, lower=min_size, upper=max_size,
            load_cap=tech.load_capacitance))
        edges.append((gidx, idx))
        edges.append((idx, sink))
        idx += 1
    nodes.append(Node(index=sink, kind=NodeKind.SINK, name="@sink"))
    edges.sort()
    return Circuit(nodes, edges, tech, name=name)
